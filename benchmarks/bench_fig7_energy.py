"""Figure 7 — normalised system energy, baseline vs ST2 GPU.

Paper claims: the baseline spends 27 % of system energy in ALUs+FPUs
(30 % of chip energy); ST2 saves 19 % of system energy (21 % chip,
excluding DRAM); for the >20 %-ALU+FPU 'arithmetic intensive' kernels
the savings are 26 % system / 28 % chip, peaking at 40 %/42 %
(msort_K2).

The per-kernel energy records come from the parallel cached runner
(the ``runner_results`` fixture): every number below is read from typed
:class:`~repro.st2.results.RunResult` views over exactly what
``st2-run`` writes to its JSONL manifest.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import stacked_pair, table
from repro.power.components import Component


def _energy_rows(runner_results):
    rows = []
    for name, r in runner_results.items():
        met = r.metrics
        rows.append((name, met.alu_fpu_share, met.system_saving,
                     met.chip_saving, met.arithmetic_intensive))
    return rows


def test_fig7_energy_breakdown(benchmark, runner_results,
                               artifact_dir):
    rows = benchmark.pedantic(_energy_rows, args=(runner_results,),
                              rounds=1, iterations=1)

    names = [r[0] for r in rows]
    comps = [c.value for c in Component] + ["static"]
    base_stacks, st2_stacks = [], []
    for name in names:
        stacks = runner_results[name].energy_stacks
        base_stacks.append(stacks["baseline"])
        st2_stacks.append(stacks["st2"])
    txt = stacked_pair(
        "Figure 7: normalized system energy (baseline vs ST2)",
        names, base_stacks, st2_stacks, comps)

    txt += table(
        "per-kernel summary",
        ["kernel", "ALU+FPU share", "system saving", "chip saving",
         "arith-intensive"],
        [(n, f"{sh:.1%}", f"{ss:.1%}", f"{cs:.1%}", str(ai))
         for n, sh, ss, cs, ai in rows])

    shares = np.array([r[1] for r in rows])
    sys_s = np.array([r[2] for r in rows])
    chip_s = np.array([r[3] for r in rows])
    ai_rows = [r for r in rows if r[4]]
    txt += (
        f"\n\nALU+FPU share of system energy: {shares.mean():.1%} avg, "
        f"{shares.max():.1%} max   (paper: 27% avg, 57% max)"
        f"\nsystem-energy saving: {sys_s.mean():.1%} avg, "
        f"{sys_s.max():.1%} max   (paper: 19% avg, 40% max)"
        f"\nchip-energy saving:   {chip_s.mean():.1%} avg, "
        f"{chip_s.max():.1%} max   (paper: 21% avg, 42% max)"
        f"\narithmetic-intensive kernels ({len(ai_rows)}/23): "
        f"{np.mean([r[2] for r in ai_rows]):.1%} system / "
        f"{np.mean([r[3] for r in ai_rows]):.1%} chip"
        "   (paper: 14/23 at 26% / 28%)")
    save_artifact(artifact_dir, "fig7_energy.txt", txt)

    # shape claims: who wins and in what order
    assert (sys_s > 0).all(), "ST2 must save energy on every kernel"
    assert (chip_s >= sys_s - 1e-9).all(), \
        "chip savings exceed system savings (DRAM+const excluded)"
    assert 0.20 < shares.mean() < 0.35
    assert sys_s.mean() > 0.08
    assert chip_s.mean() > 0.12
    # arithmetic-intensive kernels save more than the full-suite mean
    assert np.mean([r[3] for r in ai_rows]) >= chip_s.mean() - 1e-9
