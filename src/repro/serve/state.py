"""Server-side job bookkeeping: priority queue, per-client quotas,
request coalescing and unit fan-out.

Everything here is plain synchronous state, mutated only from the
server's event-loop thread (:mod:`repro.serve.app` hops pool results
onto the loop before touching it), so there are no locks.  The module
is independently testable without a running server.

**Coalescing** happens at unit granularity: a unit's identity is its
result-cache key (:func:`repro.runner.cache.unit_key` — kernel, scale,
seed, full config, code version).  While a unit is in flight, any
other job submitting the same key attaches to the same execution and
the result fans out to every waiter.  The same dict is shared — unit
payloads are immutable once finished, and identical keys mean
bit-identical payloads by construction.

**Quotas and backpressure** are accounted in *unresolved units* (the
true cost unit — a job is just a bag of units): one client may hold at
most ``client_quota`` unresolved units, and the server at most
``max_queued_units`` across all clients.  Both rejections carry a
``Retry-After`` estimate derived from the backlog.
"""

from __future__ import annotations

import heapq
import itertools
import time
import uuid

from repro import obs
from repro.api import JobStatus

#: Default limits (overridable per server via the CLI).
DEFAULT_CLIENT_QUOTA = 512
DEFAULT_MAX_QUEUED_UNITS = 4096


class RejectError(Exception):
    """A submission the server refuses right now (quota, backpressure
    or drain).  Carries everything the 429/503 envelope needs."""

    def __init__(self, code: str, message: str,
                 retry_after_s: float = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s


class Job:
    """One submitted grid moving through the queue."""

    __slots__ = ("job_id", "spec", "units", "keys", "state", "results",
                 "units_done", "units_failed", "units_cached",
                 "units_coalesced", "error", "submitted_s",
                 "started_s", "finished_s", "seq")

    def __init__(self, spec, units, keys, seq: int):
        self.job_id = uuid.uuid4().hex[:12]
        self.spec = spec
        self.units = units              # [UnitSpec, ...]
        self.keys = keys                # aligned result-cache keys
        self.seq = seq                  # submission order tiebreak
        self.state = "queued"
        self.results = [None] * len(units)
        self.units_done = 0
        self.units_failed = 0
        self.units_cached = 0
        self.units_coalesced = 0
        self.error = None
        self.submitted_s = time.time()
        self.started_s = None
        self.finished_s = None

    @property
    def unresolved(self) -> int:
        return len(self.units) - self.units_done - self.units_failed

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def status(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id, state=self.state,
            units_total=len(self.units), units_done=self.units_done,
            units_failed=self.units_failed,
            units_cached=self.units_cached,
            units_coalesced=self.units_coalesced,
            priority=self.spec.priority, client=self.spec.client,
            submitted_s=self.submitted_s, started_s=self.started_s,
            finished_s=self.finished_s, error=self.error)


class UnitExec:
    """One distinct in-flight unit execution and its waiters."""

    __slots__ = ("key", "spec", "trace_key", "waiters")

    def __init__(self, key, spec, trace_key):
        self.key = key
        self.spec = spec
        self.trace_key = trace_key
        self.waiters = []               # [(job, unit index), ...]


class ServeState:
    """The whole mutable server state: jobs, queue, quotas, in-flight
    executions."""

    def __init__(self, client_quota: int = DEFAULT_CLIENT_QUOTA,
                 max_queued_units: int = DEFAULT_MAX_QUEUED_UNITS):
        self.client_quota = client_quota
        self.max_queued_units = max_queued_units
        self.jobs = {}                  # job_id -> Job
        self.inflight = {}              # unit key -> UnitExec
        self._heap = []                 # (priority, seq, job_id)
        self._seq = itertools.count()
        self._client_units = {}         # client -> unresolved units
        self._unresolved = 0            # across all live jobs
        self.draining = False

    # -- admission -----------------------------------------------------

    def retry_after_s(self) -> float:
        """A coarse backlog-proportional Retry-After estimate: the
        mean observed unit wall time (or 50 ms before any finish)
        times the backlog per shard-second, clamped to [1, 60]."""
        stat = obs.get_obs().snapshot().get("timers", {}) \
            .get("serve.unit.wall")
        mean_s = stat["mean_s"] if stat and stat.get("count") else 0.05
        return min(60.0, max(1.0, self._unresolved * mean_s))

    def admit(self, spec, units, keys) -> Job:
        """Queue one job, or raise :class:`RejectError` (draining,
        client quota, global backpressure)."""
        if self.draining:
            raise RejectError(
                "draining", "server is draining; submit elsewhere")
        client = spec.client
        held = self._client_units.get(client, 0)
        if held + len(units) > self.client_quota:
            obs.add("serve.jobs.rejected.quota")
            raise RejectError(
                "quota_exhausted",
                f"client {client!r} holds {held} unresolved units; "
                f"{len(units)} more would exceed the quota of "
                f"{self.client_quota}",
                retry_after_s=self.retry_after_s())
        if self._unresolved + len(units) > self.max_queued_units:
            obs.add("serve.jobs.rejected.backpressure")
            raise RejectError(
                "backpressure",
                f"{self._unresolved} units already unresolved; "
                f"{len(units)} more would exceed the server bound of "
                f"{self.max_queued_units}",
                retry_after_s=self.retry_after_s())
        job = Job(spec, units, keys, next(self._seq))
        self.jobs[job.job_id] = job
        self._client_units[client] = held + len(units)
        self._unresolved += len(units)
        heapq.heappush(self._heap, (spec.priority, job.seq, job.job_id))
        obs.add("serve.jobs.submitted")
        obs.add("serve.units.submitted", len(units))
        return job

    def admit_many(self, submissions) -> list:
        """Queue several jobs atomically — all admitted or none.

        ``submissions`` is ``[(spec, units, keys), ...]``.  Aggregate
        per-client quota and global backpressure are checked up front,
        then each job is admitted in order; state is only mutated from
        the event-loop thread, so once the aggregate checks pass the
        individual :meth:`admit` calls cannot fail and the batch is
        prefix-safe by construction.
        """
        if self.draining:
            raise RejectError(
                "draining", "server is draining; submit elsewhere")
        if not submissions:
            raise RejectError("bad_request", "empty batch")
        per_client = {}
        total = 0
        for spec, units, _ in submissions:
            per_client[spec.client] = \
                per_client.get(spec.client, 0) + len(units)
            total += len(units)
        for client, wanted in sorted(per_client.items()):
            held = self._client_units.get(client, 0)
            if held + wanted > self.client_quota:
                obs.add("serve.jobs.rejected.quota", len(submissions))
                raise RejectError(
                    "quota_exhausted",
                    f"client {client!r} holds {held} unresolved "
                    f"units; the batch asks {wanted} more, exceeding "
                    f"the quota of {self.client_quota}",
                    retry_after_s=self.retry_after_s())
        if self._unresolved + total > self.max_queued_units:
            obs.add("serve.jobs.rejected.backpressure",
                    len(submissions))
            raise RejectError(
                "backpressure",
                f"{self._unresolved} units already unresolved; the "
                f"batch asks {total} more, exceeding the server bound "
                f"of {self.max_queued_units}",
                retry_after_s=self.retry_after_s())
        obs.add("serve.jobs.batches")
        return [self.admit(spec, units, keys)
                for spec, units, keys in submissions]

    def next_job(self):
        """Pop the best queued job (lowest priority, then submission
        order); ``None`` when the queue is empty."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            if job is not None and job.state == "queued":
                return job
        return None

    def peek_job(self):
        """The job :meth:`next_job` would pop, without popping it
        (stale heap entries are discarded along the way)."""
        while self._heap:
            _, _, job_id = self._heap[0]
            job = self.jobs.get(job_id)
            if job is not None and job.state == "queued":
                return job
            heapq.heappop(self._heap)
        return None

    @property
    def queued_jobs(self) -> int:
        return sum(1 for j in self.jobs.values()
                   if j.state == "queued")

    @property
    def live_jobs(self) -> int:
        return sum(1 for j in self.jobs.values() if not j.terminal)

    # -- coalescing ----------------------------------------------------

    def attach(self, job, index: int):
        """Register (job, index) against its unit's in-flight
        execution.  Returns ``(exec, created)``: ``created`` is True
        when this call opened the execution (the caller must then
        actually dispatch it); False means the unit coalesced onto an
        execution another waiter already opened."""
        key = job.keys[index]
        entry = self.inflight.get(key)
        if entry is None:
            entry = UnitExec(key, job.units[index], None)
            self.inflight[key] = entry
            entry.waiters.append((job, index))
            obs.add("serve.coalesce.miss")
            return entry, True
        entry.waiters.append((job, index))
        job.units_coalesced += 1
        obs.add("serve.coalesce.hit")
        return entry, False

    # -- completion ----------------------------------------------------

    def _account_resolved(self, job, failed: bool) -> None:
        if failed:
            job.units_failed += 1
        else:
            job.units_done += 1
        client = job.spec.client
        self._client_units[client] = \
            max(0, self._client_units.get(client, 0) - 1)
        if not self._client_units[client]:
            del self._client_units[client]
        self._unresolved = max(0, self._unresolved - 1)
        if job.unresolved == 0:
            job.state = "failed" if job.units_failed else "done"
            job.finished_s = time.time()
            obs.add("serve.jobs.failed" if job.units_failed
                    else "serve.jobs.completed")

    def resolve_cached(self, job, index: int, payload: dict) -> None:
        """Serve one unit straight from the result cache."""
        job.results[index] = payload
        job.units_cached += 1
        obs.add("serve.units.cache_hits")
        self._account_resolved(job, failed=False)

    def resolve_exec(self, key: str, ok: bool, payload):
        """Fan one finished execution out to every waiter; returns the
        affected jobs (for change notification)."""
        entry = self.inflight.pop(key, None)
        if entry is None:
            return []
        touched = []
        for job, index in entry.waiters:
            if ok:
                job.results[index] = payload
            else:
                job.error = (f"unit {job.units[index].label} failed:\n"
                             f"{payload}")
            self._account_resolved(job, failed=not ok)
            touched.append(job)
        if ok:
            obs.add("serve.units.executed")
        else:
            obs.add("serve.units.errors")
        return touched

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        return {
            "jobs": len(self.jobs),
            "jobs_live": self.live_jobs,
            "jobs_queued": self.queued_jobs,
            "units_unresolved": self._unresolved,
            "units_inflight": len(self.inflight),
            "clients": dict(sorted(self._client_units.items())),
            "draining": self.draining,
            "client_quota": self.client_quota,
            "max_queued_units": self.max_queued_units,
        }
