"""Rodinia *sradv1* — ``sradv1_K1`` (the srad diffusion-coefficient
kernel, srad_cuda_1).

Speckle-reducing anisotropic diffusion over an ultrasound-like image:
each thread loads its pixel and four neighbours, forms the directional
derivatives (FSUBs), the normalised gradient magnitude and Laplacian
(FFMA/FADD chains with divisions), and the diffusion coefficient
clamped to [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def srad1_kernel(k, image, dn_out, ds_out, dw_out, de_out, c_out, rows,
                 cols, q0sqr):
    """srad_cuda_1: derivatives and diffusion coefficient per pixel."""
    idx = k.global_id()
    n_pix = rows * cols
    with k.where(k.lt(idx, n_pix)):
        row = k.idiv(idx, cols)
        col = k.irem(idx, cols)
        up = k.sel(row > 0, k.isub(idx, cols), idx)
        down = k.sel(row < rows - 1, k.iadd(idx, cols), idx)
        left = k.sel(col > 0, k.isub(idx, 1), idx)
        right = k.sel(col < cols - 1, k.iadd(idx, 1), idx)

        jc = k.ld_global(image, idx)
        dn = k.fsub(k.ld_global(image, up), jc)
        ds = k.fsub(k.ld_global(image, down), jc)
        dw = k.fsub(k.ld_global(image, left), jc)
        de = k.fsub(k.ld_global(image, right), jc)

        g2 = k.ffma(dn, dn, np.float32(0))
        g2 = k.ffma(ds, ds, g2)
        g2 = k.ffma(dw, dw, g2)
        g2 = k.ffma(de, de, g2)
        jc2 = k.fmul(jc, jc)
        g2 = k.fdiv(g2, jc2)

        lap = k.fadd(k.fadd(dn, ds), k.fadd(dw, de))
        lap = k.fdiv(lap, jc)

        num = k.fsub(k.fmul(0.5, g2),
                     k.fmul(1.0 / 16.0, k.fmul(lap, lap)))
        den = k.fadd(1.0, k.fmul(0.25, lap))
        qsqr = k.fdiv(num, k.fmul(den, den))

        cden = k.fmul(k.fadd(1.0, q0sqr),
                      k.fsub(qsqr, q0sqr))
        coeff = k.rcp(k.fadd(1.0, k.fdiv(cden, q0sqr)))
        coeff = k.fmax(k.fmin(coeff, 1.0), 0.0)

        k.st_global(dn_out, idx, dn)
        k.st_global(ds_out, idx, ds)
        k.st_global(dw_out, idx, dw)
        k.st_global(de_out, idx, de)
        k.st_global(c_out, idx, coeff)


def srad2_kernel(k, image, dn, ds, dw, de, c, rows, cols, lam):
    """srad_cuda_2 (extension): apply the diffusion update.

    ``J += 0.25 * lambda * div`` where the divergence weights each
    directional derivative by the neighbour's diffusion coefficient.
    """
    idx = k.global_id()
    n_pix = rows * cols
    with k.where(k.lt(idx, n_pix)):
        row = k.idiv(idx, cols)
        col = k.irem(idx, cols)
        down = k.sel(row < rows - 1, k.iadd(idx, cols), idx)
        right = k.sel(col < cols - 1, k.iadd(idx, 1), idx)

        cc = k.ld_global(c, idx)
        cs = k.ld_global(c, down)
        ce = k.ld_global(c, right)

        div = k.ffma(cs, k.ld_global(ds, idx),
                     k.fmul(cc, k.ld_global(dn, idx)))
        div = k.ffma(ce, k.ld_global(de, idx), div)
        div = k.ffma(cc, k.ld_global(dw, idx), div)

        jc = k.ld_global(image, idx)
        k.st_global(image, idx,
                    k.ffma(np.float32(0.25) * lam, div, jc))


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """A smooth speckled image (exponential of a low-pass field), like
    the srad input after the extract step."""
    rng = np.random.default_rng(seed)
    rows = scaled(48, scale, minimum=8)
    cols = scaled(64, scale, minimum=16)
    base = np.cumsum(rng.normal(0, 0.02, (rows, cols)), axis=1)
    base += np.cumsum(rng.normal(0, 0.02, (rows, cols)), axis=0)
    image = np.exp(base).astype(np.float32).reshape(-1)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    n_pix = rows * cols
    grid = max(1, (n_pix + BLOCK - 1) // BLOCK)
    zeros = lambda name: launcher.buffer(name, np.zeros(n_pix, np.float32))
    return PreparedKernel(
        name="sradv1_K1",
        fn=srad1_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            image=launcher.buffer("image", image),
            dn_out=zeros("dN"), ds_out=zeros("dS"), dw_out=zeros("dW"),
            de_out=zeros("dE"), c_out=zeros("c"),
            rows=rows, cols=cols, q0sqr=np.float32(0.05)),
        launcher=launcher)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Extension kernel: the srad update step, fed by a K1 execution."""
    k1 = prepare(scale=scale, seed=seed, gpu=gpu)
    k1.run()
    p = k1.params
    launcher = k1.launcher
    return PreparedKernel(
        name="sradv1_K2",
        fn=srad2_kernel,
        launch=k1.launch,
        params=dict(image=p["image"], dn=p["dn_out"], ds=p["ds_out"],
                    dw=p["dw_out"], de=p["de_out"], c=p["c_out"],
                    rows=p["rows"], cols=p["cols"],
                    lam=np.float32(0.5)),
        launcher=launcher)
