"""ST2 GPU energy accounting — how the speculative adders transform the
per-component energy breakdown (the paper's Figure 7).

ST2 replaces the main adder datapath inside every ALU (and the mantissa
adder inside every FPU/DPU) with the voltage-scaled sliced design.  The
energy of an adder-class operation therefore splits into

* an *adder fraction* — the sliced, voltage-scaled datapath (nearly the
  whole unit for an integer add; the mantissa path for FP, whose
  exponent/align/normalise logic is untouched, Section IV-C), and
* the remainder, which ST2 does not change.

The scaled adder energy comes from the circuit characterisation
(:class:`~repro.circuits.characterize.AdderEnergyModel`), applied at
the workload's measured misprediction statistics; CRF accesses, the
State/Cout DFFs and the level shifters are charged on top.  Non-add
operations, and every other component, are unchanged — except the small
extra static/idle energy of the longer ST2 runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.characterize import AdderEnergyModel
from repro.power.components import Component
from repro.power.model import GPUPowerModel

#: fraction of an adder-class op's unit energy that is the sliced,
#: voltage-scalable adder datapath (the rest is operand staging for
#: integer ops; exponent/align/round logic for FP mantissa adds).
ADDER_FRACTION = {
    "alu_add": 0.94,     # the ALU *is* essentially its adder
    "fpu_add": 0.78,     # 23-bit mantissa path dominates the FP32 add
    "dpu_add": 0.82,     # 52-bit mantissa path of the FP64 add
}

#: 64-bit address adds (LEA) ride the integer adder too.
_ADD_SUBTYPES = ("alu_add", "fpu_add", "dpu_add")


@dataclass
class EnergyBreakdown:
    """Per-component energy of one kernel on one architecture (joules)."""

    name: str
    components: dict                 # Component -> J
    constant_j: float
    idle_j: float

    @property
    def dynamic_j(self) -> float:
        return sum(self.components.values())

    @property
    def system_j(self) -> float:
        """Everything — what Figure 7 normalises against."""
        return self.dynamic_j + self.constant_j + self.idle_j

    @property
    def chip_j(self) -> float:
        """On-chip energy: excludes DRAM and the board-constant power
        (fans, regulators), includes idle-SM static energy."""
        return (self.dynamic_j - self.components[Component.DRAM]
                + self.idle_j)

    def share(self, component: Component) -> float:
        return self.components[component] / self.system_j


def baseline_breakdown(model: GPUPowerModel, activity) -> EnergyBreakdown:
    comps = model.component_energy_j(activity)
    const = model.p_const_w * activity.duration_s
    idle = (model.p_idle_sm_w * activity.n_idle_sms
            * activity.duration_s)
    return EnergyBreakdown(name=activity.name, components=comps,
                           constant_j=const, idle_j=idle)


def st2_breakdown(model: GPUPowerModel, activity, speculation,
                  adder_model: AdderEnergyModel,
                  duration_scale: float = 1.0) -> EnergyBreakdown:
    """Transform a baseline breakdown into the ST2 GPU's.

    ``speculation`` is the kernel's
    :class:`~repro.core.predictors.SpeculationResult` under the ST2
    design; ``duration_scale`` is the (tiny) runtime ratio from the
    timing model, which stretches static/constant energy.
    """
    comps = model.component_energy_j(activity)

    # Relative shrink of the adder datapath: the circuit-characterised
    # saving (voltage scaling + fewer toggles, net of CRF accesses and
    # the workload's recompute energy).  This ratio applies to the whole
    # datapath share of the op — local wiring and drivers scale with
    # V^2 exactly like the gates do.
    miss = speculation.thread_misprediction_rate
    rec = speculation.recomputed_per_misprediction
    datapath_saving = adder_model.saving(miss, rec)

    # Absolute per-op overheads: the State/Cout flops and the level
    # shifters are small standalone cells, charged at face value (they
    # do NOT inherit the system-level wiring multiplier — the paper
    # likewise reports them separately and finds them negligible).
    overhead_per_op_j = (adder_model.dff_fj
                         + adder_model.level_shifter_fj) * 1e-15

    saved_j = 0.0
    n_adds = 0.0
    for subtype in _ADD_SUBTYPES:
        n_ops = activity.fine.get(subtype, 0.0)
        n_adds += n_ops
        adder_j = (model.alu_subtype_energy_j(activity, subtype)
                   * ADDER_FRACTION[subtype])
        saved_j += adder_j * datapath_saving
    saved_j -= n_adds * overhead_per_op_j
    comps = dict(comps)
    comps[Component.ALU_FPU] = max(
        comps[Component.ALU_FPU] - saved_j, 0.0)

    duration = activity.duration_s * duration_scale
    const = model.p_const_w * duration
    idle = model.p_idle_sm_w * activity.n_idle_sms * duration
    return EnergyBreakdown(name=activity.name, components=comps,
                           constant_j=const, idle_j=idle)


@dataclass
class EnergyComparison:
    """Baseline vs ST2 for one kernel — one column pair of Figure 7."""

    name: str
    baseline: EnergyBreakdown
    st2: EnergyBreakdown

    @property
    def system_saving(self) -> float:
        return 1.0 - self.st2.system_j / self.baseline.system_j

    @property
    def chip_saving(self) -> float:
        return 1.0 - self.st2.chip_j / self.baseline.chip_j

    @property
    def alu_fpu_share(self) -> float:
        """Baseline ALU+FPU share of system energy (the >20 %
        'arithmetic intensive' criterion of Section VI)."""
        return self.baseline.share(Component.ALU_FPU)

    def normalized_stacks(self) -> tuple:
        """(baseline, st2) component stacks normalised to the baseline
        system energy — exactly Figure 7's bar pairs."""
        total = self.baseline.system_j

        def stack(b: EnergyBreakdown) -> dict:
            out = {c.value: b.components[c] / total for c in Component}
            out["static"] = (b.constant_j + b.idle_j) / total
            return out
        return stack(self.baseline), stack(self.st2)
