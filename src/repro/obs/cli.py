"""``st2-stats`` — read, compare and check ``metrics.json`` dumps.

Subcommands::

    st2-stats summary run.metrics.json            # counters + timers
    st2-stats diff old.metrics.json new.metrics.json
    st2-stats check run.metrics.json --baseline BENCH_pipeline.json
    st2-stats baseline run.metrics.json --out BENCH_pipeline.json

Any ``METRICS`` argument also accepts the *manifest* path
(``st2_manifest.jsonl``): the rider metrics file next to it
(``st2_manifest.metrics.json``) is resolved automatically, so
``st2-stats summary st2_manifest.jsonl`` does what you mean.

Exit codes follow the shared contract (:mod:`repro.cli_common`):
0 success / in-band, 1 out-of-band metrics (``check``), 2 usage or
unreadable/ill-formed input files.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro import cli_common
from repro.obs.metrics import (baseline_from_metrics,
                               check_baseline_rows, diff_metrics,
                               load_baseline, metrics_path_for,
                               read_metrics)


def build_parser():
    parser = cli_common.build_parser(
        "st2-stats",
        "Inspect, diff and baseline-check the runner's metrics.json "
        "observability dumps.")
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="print one metrics file's counters and timers")
    summary.add_argument("metrics",
                         help="metrics.json (or its manifest) path")
    cli_common.add_json_flag(summary)

    diff = sub.add_parser(
        "diff", help="aligned comparison of two metrics files")
    diff.add_argument("old", help="old metrics.json (or manifest)")
    diff.add_argument("new", help="new metrics.json (or manifest)")
    diff.add_argument("--changed-only", action="store_true",
                      help="hide metrics that are exactly equal")
    cli_common.add_json_flag(diff)

    check = sub.add_parser(
        "check", help="check a metrics file against a baseline's "
                      "tolerance bands; exit 1 when out of band")
    check.add_argument("metrics",
                       help="metrics.json (or its manifest) path")
    check.add_argument("--baseline", required=True, metavar="FILE",
                       help="baseline file (e.g. BENCH_pipeline.json)")
    cli_common.add_json_flag(check)

    baseline = sub.add_parser(
        "baseline", help="seed a baseline file from a measured "
                         "metrics file")
    baseline.add_argument("metrics",
                          help="metrics.json (or its manifest) path")
    baseline.add_argument("--out", required=True, metavar="FILE",
                          help="baseline file to write")
    baseline.add_argument("--rel-tol", type=float, default=0.05,
                          help="relative tolerance pinned on every "
                               "counter (default 0.05)")
    baseline.add_argument("--time-factor", type=float, default=25.0,
                          help="upper bound on runner timers = "
                               "factor x measured (default 25)")
    baseline.add_argument("--description", default="",
                          help="free-text description recorded in the "
                               "baseline")
    return parser


def _load(path: str) -> dict:
    """Read a metrics file; a manifest (``.jsonl``) path resolves to
    the rider metrics file next to it."""
    path = Path(path)
    if path.suffix == ".jsonl":
        path = metrics_path_for(path)
    return read_metrics(path)


def _cmd_summary(args) -> int:
    metrics = _load(args.metrics)
    if args.json:
        cli_common.emit_json(metrics)
        return cli_common.EXIT_OK
    counters = metrics.get("counters", {})
    timers = metrics.get("timers", {})
    if counters:
        width = max(len(n) for n in counters)
        print("counters")
        for name in sorted(counters):
            print(f"  {name:<{width}}  {counters[name]:>14,}")
    if timers:
        width = max(len(n) for n in timers)
        print("timers")
        print(f"  {'name':<{width}}  {'count':>7} {'total s':>10} "
              f"{'mean s':>10} {'max s':>10}")
        for name in sorted(timers):
            t = timers[name]
            print(f"  {name:<{width}}  {t['count']:>7} "
                  f"{t['total_s']:>10.3f} {t['mean_s']:>10.4f} "
                  f"{t['max_s']:>10.4f}")
    if not counters and not timers:
        print("no metrics recorded")
    return cli_common.EXIT_OK


def _cmd_diff(args) -> int:
    rows = diff_metrics(_load(args.old), _load(args.new))
    if args.changed_only:
        rows = [r for r in rows if r["delta"] != 0]
    if args.json:
        cli_common.emit_json(rows)
        return cli_common.EXIT_OK
    if not rows:
        print("no differences")
        return cli_common.EXIT_OK
    width = max(len(r["metric"]) for r in rows)
    for r in rows:
        old = "-" if r["old"] is None else f"{r['old']:g}"
        new = "-" if r["new"] is None else f"{r['new']:g}"
        if r["delta"] is None:
            tail = "(one side only)"
        elif r["delta"] == 0:
            tail = "="
        else:
            rel = f" ({r['rel']:+.1%})" if r["rel"] == r["rel"] else ""
            tail = f"{r['delta']:+g}{rel}"
        print(f"{r['metric']:<{width}}  {old:>14} -> {new:>14}  {tail}")
    return cli_common.EXIT_OK


def _cmd_check(args) -> int:
    metrics = _load(args.metrics)
    baseline = load_baseline(args.baseline)
    rows = check_baseline_rows(metrics, baseline)
    problems = [p for row in rows for p in row["problems"]]
    checked = len(rows)
    if args.json:
        cli_common.emit_json({"checked": checked,
                              "deviations": problems,
                              "ok": not problems,
                              "rows": rows})
        return cli_common.EXIT_PROBLEMS if problems \
            else cli_common.EXIT_OK
    for problem in problems:
        print(problem)
    if problems:
        print(f"st2-stats: {len(problems)}/{checked} metrics out of "
              f"band", file=sys.stderr)
        return cli_common.EXIT_PROBLEMS
    print(f"st2-stats: {checked} metrics in band")
    return cli_common.EXIT_OK


def _cmd_baseline(args) -> int:
    metrics = _load(args.metrics)
    payload = baseline_from_metrics(metrics, rel_tol=args.rel_tol,
                                    time_factor=args.time_factor,
                                    description=args.description)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"st2-stats: wrote {len(payload['metrics'])} pinned "
          f"metric(s) to {args.out}")
    return cli_common.EXIT_OK


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"summary": _cmd_summary, "diff": _cmd_diff,
                "check": _cmd_check, "baseline": _cmd_baseline}
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        return cli_common.fail("st2-stats",
                               f"no such file: {exc.filename}")
    except (ValueError, json.JSONDecodeError) as exc:
        return cli_common.fail("st2-stats", str(exc))


def console_main() -> int:
    return cli_common.run_cli(main)


if __name__ == "__main__":
    sys.exit(console_main())
