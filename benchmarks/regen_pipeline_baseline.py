#!/usr/bin/env python
"""Regenerate ``BENCH_pipeline.json`` from a fresh pinned-grid run.

The baseline pins the deterministic 4-kernel × 2-config grid the
``obs-smoke`` CI job replays (``--no-cache`` + a fresh trace store, so
every functional counter is machine-independent).  This script:

1. runs the pinned grid with the **vectorized** engine into a
   temporary trace store / manifest,
2. seeds a baseline from the measured metrics
   (:func:`repro.obs.metrics.baseline_from_metrics` — counters pinned
   at 5 % relative tolerance, runner timers bounded at 25× measured),
3. tightens the evaluation-stage bounds into a real perf gate:
   ``timers.runner.stage.eval.total_s`` and ``meta.stage_eval_s`` get
   a ``max`` of ``--eval-factor`` × measured (default 2.0 — a >2×
   eval-stage slowdown fails ``st2-stats check``),
4. self-checks against the previous baseline: every counter the old
   file pinned must come out **identical** (the vec engine's counter
   parity with the interpreter means regeneration must not move a
   single functional counter; if one moved, that's a bug, not drift).

Usage::

    python benchmarks/regen_pipeline_baseline.py            # rewrite
    python benchmarks/regen_pipeline_baseline.py --dry-run  # verify only
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.obs.metrics import (baseline_from_metrics, load_baseline,
                               lookup_metric, metrics_path_for,
                               read_metrics)
from repro.runner import cli as runner_cli

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_pipeline.json"

GRID_KERNELS = "qrng_K1,qrng_K2,sortNets_K2,pathfinder"
GRID_CONFIGS = "st2,prev"
GRID_SCALE = "0.25"
GRID_SEED = "0"
GRID_WORKERS = "2"

#: evaluation-stage refs promoted from machine-tolerant (25×) to perf
#: gate (``--eval-factor`` ×) bounds
EVAL_REFS = ("timers.runner.stage.eval.total_s", "meta.stage_eval_s")


def run_pinned_grid(workdir: Path) -> dict:
    """Run the pinned grid (vec engine) and return its metrics file."""
    manifest = workdir / "bench-manifest.jsonl"
    rc = runner_cli.main([
        "--kernels", GRID_KERNELS, "--configs", GRID_CONFIGS,
        "--scale", GRID_SCALE, "--seed", GRID_SEED,
        "--workers", GRID_WORKERS, "--engine", "vec",
        "--no-cache", "--no-aux",
        "--trace-store", str(workdir / "traces"),
        "--out", str(manifest), "--quiet",
    ])
    if rc != 0:
        raise SystemExit(f"pinned grid run failed with exit code {rc}")
    return read_metrics(metrics_path_for(manifest))


def build_baseline(metrics: dict, eval_factor: float) -> dict:
    description = (
        "4-kernel x 2-config pipeline baseline (vec engine): st2-run "
        f"--kernels {GRID_KERNELS} --configs {GRID_CONFIGS} "
        f"--scale {GRID_SCALE} --seed {GRID_SEED} --engine vec "
        "--no-aux --no-cache --trace-store <fresh>; regenerate with "
        "benchmarks/regen_pipeline_baseline.py")
    payload = baseline_from_metrics(metrics, rel_tol=0.05,
                                    time_factor=25.0,
                                    description=description)
    entries = [e for e in payload["metrics"]
               if e["metric"] not in EVAL_REFS]
    for ref in EVAL_REFS:
        measured = lookup_metric(metrics, ref)
        entries.append({"metric": ref,
                        "max": round(measured * eval_factor, 3)})
    payload["metrics"] = sorted(entries, key=lambda e: e["metric"])
    return payload


def check_counters_unchanged(new: dict, old: dict) -> list:
    """Every counter the old baseline pinned must be pinned at the
    same value in the new one (vec/interp counter parity)."""
    pinned = {e["metric"]: e for e in new["metrics"]}
    problems = []
    for entry in old["metrics"]:
        ref = entry["metric"]
        if not ref.startswith("counters.") or "value" not in entry:
            continue
        fresh = pinned.get(ref)
        if fresh is None:
            problems.append(f"{ref}: pinned before, gone now")
        elif fresh.get("value") != entry["value"]:
            problems.append(f"{ref}: {entry['value']} -> "
                            f"{fresh.get('value')}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate BENCH_pipeline.json with the "
                    "vectorized engine")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="baseline file to write "
                             f"(default {DEFAULT_OUT})")
    parser.add_argument("--eval-factor", type=float, default=2.0,
                        help="eval-stage max = factor x measured "
                             "(default 2.0)")
    parser.add_argument("--dry-run", action="store_true",
                        help="run + self-check but do not write")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-regen-") as tmp:
        metrics = run_pinned_grid(Path(tmp))
    payload = build_baseline(metrics, args.eval_factor)

    if args.out.exists():
        problems = check_counters_unchanged(payload,
                                            load_baseline(args.out))
        if problems:
            print("regen_pipeline_baseline: pinned counters moved "
                  "(vec/interp counter parity is broken?):",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"self-check ok: every counter pinned in {args.out} "
              "is unchanged")

    eval_s = lookup_metric(metrics, "meta.stage_eval_s")
    print(f"measured stage_eval_s = {eval_s:.3f}s "
          f"-> gate at {eval_s * args.eval_factor:.3f}s")
    if args.dry_run:
        print("dry run: baseline not written")
        return 0
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(payload['metrics'])} pinned metric(s) "
          f"to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
