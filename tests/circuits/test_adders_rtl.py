"""Gate-level adders must agree with integer arithmetic bit-for-bit."""

import numpy as np
import pytest

from repro.circuits.adders_rtl import (adder_outputs_to_int,
                                       brent_kung_adder, kogge_stone_adder,
                                       ripple_carry_adder, sliced_adder)

BUILDERS = [ripple_carry_adder, kogge_stone_adder, brent_kung_adder]


def _stimulus(rng, width, n, a=None, b=None, cin=None, extra=0):
    lim = (1 << width) if width < 64 else (1 << 63)
    a = rng.integers(0, lim, n, dtype=np.uint64) if a is None else a
    b = rng.integers(0, lim, n, dtype=np.uint64) if b is None else b
    cin = rng.integers(0, 2, n, dtype=np.uint64) if cin is None else cin
    stim = np.zeros((n, 2 * width + 1 + extra), dtype=bool)
    for i in range(width):
        stim[:, i] = (a >> np.uint64(i)) & np.uint64(1)
        stim[:, width + i] = (b >> np.uint64(i)) & np.uint64(1)
    stim[:, 2 * width] = cin.astype(bool)
    return stim, a, b, cin


def _expected(a, b, cin, width):
    with np.errstate(over="ignore"):
        total = a + b + cin
    if width < 64:
        return total & np.uint64((1 << width) - 1)
    return total


class TestAddersFunctional:
    @pytest.mark.parametrize("builder", BUILDERS)
    @pytest.mark.parametrize("width", [4, 8, 13, 32, 64])
    def test_random_vectors(self, builder, width, rng):
        net = builder(width)
        stim, a, b, cin = _stimulus(rng, width, 200)
        got = adder_outputs_to_int(net.outputs(stim), width)
        assert np.array_equal(got, _expected(a, b, cin, width))

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_carry_out(self, builder, rng):
        width = 16
        net = builder(width)
        stim, a, b, cin = _stimulus(rng, width, 300)
        cout = net.outputs(stim)[:, width].astype(np.uint64)
        expect = (a + b + cin) >> np.uint64(width)
        assert np.array_equal(cout, expect)

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_exhaustive_4bit(self, builder):
        net = builder(4)
        cases = [(a, b, c) for a in range(16) for b in range(16)
                 for c in range(2)]
        a = np.array([x[0] for x in cases], dtype=np.uint64)
        b = np.array([x[1] for x in cases], dtype=np.uint64)
        c = np.array([x[2] for x in cases], dtype=np.uint64)
        stim, *_ = _stimulus(None, 4, len(cases), a, b, c)
        got = adder_outputs_to_int(net.outputs(stim), 4)
        assert np.array_equal(got, (a + b + c) & np.uint64(15))


class TestSlicedAdder:
    def test_correct_when_predictions_correct(self, rng):
        """Feeding the TRUE slice carries as predictions must give the
        exact sum (the single-cycle happy path of the ST2 datapath)."""
        from repro.core import bitops
        width = 64
        net = sliced_adder(width, 8)
        n = 150
        stim, a, b, cin = _stimulus(rng, width, n, extra=7)
        true_carries = bitops.slice_carry_ins(a, b, width, 8, cin)
        stim[:, 2 * width + 1:] = true_carries[:, 1:].astype(bool)
        out = net.outputs(stim)
        got = adder_outputs_to_int(out, width)
        assert np.array_equal(got, _expected(a, b, cin, width))
        # all error detectors quiet
        errors = out[:, width + 8:]
        assert not errors.any()

    def test_error_signal_fires_on_wrong_prediction(self, rng):
        from repro.core import bitops
        width = 16
        net = sliced_adder(width, 8)   # 2 slices, 1 prediction
        n = 200
        stim, a, b, cin = _stimulus(rng, width, n, extra=1)
        true_carries = bitops.slice_carry_ins(a, b, width, 8, cin)
        wrong = 1 - true_carries[:, 1]
        stim[:, 2 * width + 1] = wrong.astype(bool)
        out = net.outputs(stim)
        # E[1] = cpred ^ cout[0]; cout[0] is correct (true carry), so the
        # inverted prediction must always raise the error
        errors = out[:, width + 2]
        assert errors.all()

    def test_structure_counts(self):
        net = sliced_adder(64, 8)
        # inputs: 64 + 64 + 1 + 7
        assert len(net.input_nodes) == 136
        # outputs: 64 sums + 8 couts + 7 errors
        assert len(net.output_nodes) == 79


class TestDelayOrdering:
    def test_prefix_faster_than_ripple(self):
        assert kogge_stone_adder(64).critical_path_ps() \
            < ripple_carry_adder(64).critical_path_ps()

    def test_slice_path_shorter_than_reference(self):
        assert sliced_adder(64, 8).critical_path_ps() \
            < brent_kung_adder(64).critical_path_ps()

    def test_ripple_gate_count_linear(self):
        assert ripple_carry_adder(32).n_gates \
            == 2 * ripple_carry_adder(16).n_gates
