"""``affineChain`` — a bounds-analysis witness microbenchmark.

Every integer add in the hot loop combines a `k.range` loop counter
with small literal offsets, so the flow tier's interval analysis pins
every slice carry of every site to zero (the counter never crosses a
slice boundary).  That makes the kernel the deterministic fixture for
`st2-lint bounds` and the sweep engine's static pruning gate: under
``static0`` (or any mechanism with Peek) speculation is provably
always correct, while under ``static1`` every pinned site is provably
always wrong — a sound, pre-execution reason to discard the config
class.  The XOR accumulation keeps the chain live without emitting
adder rows, mirroring the Sobol'/Niederreiter index storms the paper's
QRNG kernels spend their ALU energy on.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
STEPS = 24          # hot-loop trip count; counter stays far below 2**8


def affine_chain_kernel(k, out, n):
    """affineChain: statically-pinned affine index chains per thread."""
    t = k.global_id()
    acc = np.zeros(k.n_threads, dtype=np.int64)
    for i in k.range(STEPS):
        j = k.iadd(i, 1)            # <= STEPS      : carries pinned 0
        u = k.iadd(j, 32)           # <= STEPS + 32 : carries pinned 0
        v = k.iadd(u, 64)           # <= STEPS + 96 : carries pinned 0
        acc = k.ixor(acc, k.shl(v, i))
    k.st_global(out, t, k.cvt_f32(acc))


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    n = scaled(512, scale, minimum=BLOCK, multiple=BLOCK)
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="affineChain",
        fn=affine_chain_kernel,
        launch=LaunchConfig(n // BLOCK, BLOCK),
        params=dict(
            out=launcher.buffer("out", np.zeros(n, np.float32)),
            n=n),
        launcher=launcher)
