"""GPU configuration — an NVIDIA TITAN V (Volta GV100) shaped model.

Parameters follow Section II-A of the paper and the Volta whitepaper:
80 SMs, each with 64 ALUs, 64 FPUs, 32 DPUs, 4 SFUs; 32-thread warps;
up to 2048 resident threads per SM.  The numbers drive the functional
executor (block→SM placement), the cycle-approximate timing model
(functional-unit pool widths) and the overhead accounting (CRF bytes per
SM, level shifters per adder).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUConfig:
    """Chip-level parameters of the simulated GPU."""

    name: str = "TITAN V (Volta GV100)"
    n_sms: int = 80
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32

    # functional-unit pool sizes per SM (units able to start an op/cycle)
    alus_per_sm: int = 64
    fpus_per_sm: int = 64
    dpus_per_sm: int = 32
    sfus_per_sm: int = 4
    ldst_per_sm: int = 32
    tensor_cores_per_sm: int = 8

    # issue machinery: 4 processing blocks per SM, one warp issued per
    # block per cycle
    schedulers_per_sm: int = 4

    core_clock_ghz: float = 1.2
    chip_area_mm2: float = 815.0
    #: on-chip SRAM the paper compares the ST2 storage overhead against
    #: (register files + caches), bytes.
    onchip_sram_bytes: int = 80 * (256 * 1024 + 128 * 1024) + 4608 * 1024

    # Carry Register File (Section IV-C): 16 entries x 224 bits per SM.
    crf_entries: int = 16
    crf_bits_per_entry: int = 224

    def crf_bytes_per_sm(self) -> int:
        return self.crf_entries * self.crf_bits_per_entry // 8

    def warps_per_block(self, block_threads: int) -> int:
        return (block_threads + self.warp_size - 1) // self.warp_size


#: Default chip model used across the repository.
TITAN_V = GPUConfig()

#: A Turing-class gaming chip (TU102-like): fewer SMs, vestigial FP64
#: (2 DPUs/SM). Exists to show every study runs on other chip shapes —
#: the ST2 design is parameterised, not hard-wired to GV100.
TURING_TU102 = GPUConfig(
    name="TU102-like (Turing)",
    n_sms=68,
    dpus_per_sm=2,
    tensor_cores_per_sm=8,
    core_clock_ghz=1.35,
    chip_area_mm2=754.0,
    onchip_sram_bytes=68 * (256 * 1024 + 96 * 1024) + 5632 * 1024,
)


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch: grid of thread blocks."""

    grid_blocks: int
    block_threads: int

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise ValueError("grid must contain at least one block")
        if self.block_threads < 1 or self.block_threads % 32:
            raise ValueError("block size must be a positive multiple of 32")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.block_threads
