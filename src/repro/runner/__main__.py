"""Entry point for ``python -m repro.runner``."""

import sys

from repro.runner.cli import console_main

if __name__ == "__main__":
    sys.exit(console_main())
