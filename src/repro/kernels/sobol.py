"""CUDA Samples *SobolQRNG* — ``sobolQRNG`` (sobolGPU_kernel).

Sobol' sequence generation: thread ``t`` produces points ``t, t+T,
t+2T, ...`` of one dimension by XOR-combining direction vectors selected
by the Gray-code bits of the index, then scaling to [0, 1).  The index
arithmetic (sequential integers!) makes its ALU adds extremely
predictable, while the XOR accumulation is classic "ALU Other".
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
N_DIRECTIONS = 20
INT_SCALE = np.float32(1.0 / (1 << 31))


def sobol_kernel(k, directions, output, n, points_per_thread):
    """sobolGPU: strided Sobol' point generation (one dimension)."""
    t = k.global_id()
    stride = k.launch.total_threads
    for p in k.range(points_per_thread):
        idx = k.imad(p, stride, t)
        with k.where(k.lt(idx, n)):
            gray = k.ixor(idx, k.shr(idx, 1))
            acc = np.zeros(k.n_threads, dtype=np.int64)
            for bit in k.range(N_DIRECTIONS):
                take = k.ne(k.iand(k.shr(gray, bit), 1), 0)
                v = k.ld_const(directions, bit)
                acc = k.sel(take, k.ixor(acc, v), acc)
            val = k.fmul(k.cvt_f32(acc), INT_SCALE)
            k.st_global(output, idx, val)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    grid = scaled(4, scale, minimum=2)
    points_per_thread = scaled(4, scale, minimum=2)
    n = grid * BLOCK * points_per_thread

    directions = np.zeros(N_DIRECTIONS, dtype=np.int32)
    v = 1 << 30
    for bit in range(N_DIRECTIONS):
        directions[bit] = v ^ int(rng.integers(0, 1 << 12))
        v >>= 1

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="sobolQRNG",
        fn=sobol_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            directions=launcher.buffer("directions", directions),
            output=launcher.buffer("output", np.zeros(n, np.float32)),
            n=n, points_per_thread=points_per_thread),
        launcher=launcher)
