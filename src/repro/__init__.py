"""repro — a full reproduction of *ST2 GPU: An Energy-Efficient GPU
Design with Spatio-Temporal Shared-Thread Speculative Adders*
(Kandiah, Gok, Tziantzioulis, Hardavellas — DAC 2021).

Public API highlights
---------------------

* :class:`repro.core.adder.ST2Adder` — the speculative sliced adder.
* :class:`repro.core.predictors.SpeculationConfig` /
  :func:`repro.core.predictors.run_speculation` — the carry-speculation
  design space over execution traces.
* :data:`repro.core.speculation.ST2_DESIGN` — the paper's final design
  point (``Ltid+Prev+ModPC4+Peek``).
* :mod:`repro.kernels.suite` — the 23-kernel evaluation suite.
* :func:`repro.st2.architecture.evaluate_suite` — the end-to-end
  Section VI evaluation (misprediction, timing, energy).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.adder import CarrySelectAdder, ReferenceAdder, ST2Adder
from repro.core.predictors import (SpeculationConfig, SpeculationResult,
                                   run_speculation)
from repro.core.slices import AdderGeometry
from repro.core.speculation import DESIGN_LADDER, ST2_DESIGN
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher, KernelRun, run_kernel

__version__ = "1.0.0"

__all__ = [
    "AdderGeometry",
    "CarrySelectAdder",
    "DESIGN_LADDER",
    "GPUConfig",
    "GridLauncher",
    "KernelRun",
    "LaunchConfig",
    "ReferenceAdder",
    "ST2Adder",
    "ST2_DESIGN",
    "SpeculationConfig",
    "SpeculationResult",
    "TITAN_V",
    "run_kernel",
    "run_speculation",
]
