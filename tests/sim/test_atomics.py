"""Atomic read-modify-write semantics."""

import numpy as np

from repro.sim.config import LaunchConfig
from repro.sim.functional import GridLauncher


class TestAtomicAdd:
    def test_colliding_lanes_all_land(self):
        """The whole point of atomics: no lost increments."""
        def kernel(k, counter):
            k.atomic_add(counter, 0, 1)

        launcher = GridLauncher()
        counter = launcher.buffer("c", np.zeros(1, np.int64))
        launcher.run(kernel, LaunchConfig(2, 64), counter=counter)
        assert counter.data[0] == 128

    def test_returns_pre_add_values(self):
        captured = {}

        def kernel(k, counter):
            captured["old"] = k.atomic_add(counter, 0, 1)

        launcher = GridLauncher()
        counter = launcher.buffer("c", np.zeros(1, np.int64))
        launcher.run(kernel, LaunchConfig(1, 32), counter=counter)
        # lane-order arbitration: lane i observes i prior increments
        assert sorted(captured["old"]) == list(range(32))

    def test_masked_lanes_do_not_add(self):
        def kernel(k, counter):
            i = k.thread_id()
            with k.where(i < 10):
                k.atomic_add(counter, 0, 1)

        launcher = GridLauncher()
        counter = launcher.buffer("c", np.zeros(1, np.int64))
        launcher.run(kernel, LaunchConfig(1, 64), counter=counter)
        assert counter.data[0] == 10

    def test_per_lane_targets(self):
        def kernel(k, bins):
            k.atomic_add(bins, k.thread_id() % 4, 1)

        launcher = GridLauncher()
        bins = launcher.buffer("bins", np.zeros(4, np.int64))
        launcher.run(kernel, LaunchConfig(1, 64), bins=bins)
        assert list(bins.data) == [16, 16, 16, 16]

    def test_atomic_histogram_exact(self):
        """An atomics-based histogram matches numpy exactly —
        contrast with a racy non-atomic shared-memory version."""
        def kernel(k, data, hist, n):
            i = k.global_id()
            with k.where(k.lt(i, n)):
                v = k.ld_global(data, i)
                k.atomic_add(hist, v, 1)

        rng = np.random.default_rng(0)
        data = rng.integers(0, 16, 256).astype(np.int64)
        launcher = GridLauncher()
        d = launcher.buffer("d", data)
        h = launcher.buffer("h", np.zeros(16, np.int64))
        launcher.run(kernel, LaunchConfig(2, 128), data=d, hist=h,
                     n=256)
        assert np.array_equal(h.data, np.bincount(data, minlength=16))

    def test_shared_atomic(self):
        def kernel(k, out):
            s = k.shared(4, np.int64)
            k.atomic_add_shared(s, k.thread_id() % 4, 2)
            k.syncthreads()
            with k.where(k.lt(k.thread_id(), 4)):
                k.st_global(out, k.thread_id(),
                            k.ld_shared(s, k.thread_id()))

        launcher = GridLauncher()
        out = launcher.buffer("out", np.zeros(4, np.int64))
        launcher.run(kernel, LaunchConfig(1, 64), out=out)
        assert list(out.data) == [32, 32, 32, 32]

    def test_atomics_counted_as_memory_traffic(self):
        def kernel(k, counter):
            k.atomic_add(counter, 0, 1)

        launcher = GridLauncher()
        counter = launcher.buffer("c", np.zeros(1, np.int64))
        run = launcher.run(kernel, LaunchConfig(1, 32), counter=counter)
        assert run.mem.global_stores == 32
        # and the address arithmetic appears in the adder trace (LEA)
        assert len(run.trace) == 32


class TestSharedAtomicMasking:
    def test_masked_lanes_do_not_add_shared(self):
        def kernel(k, out):
            s = k.shared(1, np.int64)
            t = k.thread_id()
            with k.where(k.lt(t, 10)):
                k.atomic_add_shared(s, 0, 1)
            k.syncthreads()
            with k.where(k.eq(t, 0)):
                k.st_global(out, 0, k.ld_shared(s, 0))

        launcher = GridLauncher()
        out = launcher.buffer("out", np.zeros(1, np.int64))
        launcher.run(kernel, LaunchConfig(1, 64), out=out)
        assert out.data[0] == 10

    def test_masked_old_values_stay_zero(self):
        captured = {}

        def kernel(k, out):
            s = k.shared(1, np.int64)
            t = k.thread_id()
            with k.where(k.ge(t, 60)):
                captured["old"] = k.atomic_add_shared(s, 0, 1)
            k.st_global(out, 0, 0)

        launcher = GridLauncher()
        out = launcher.buffer("out", np.zeros(1, np.int64))
        launcher.run(kernel, LaunchConfig(1, 64), out=out)
        old = np.asarray(captured["old"])
        # inactive lanes observe nothing; the 4 active lanes serialise
        assert list(old[:60]) == [0] * 60
        assert sorted(old[60:]) == [0, 1, 2, 3]
