"""Dynamic traces produced by the functional simulator.

Two granularities are captured:

* :class:`AddTrace` — one row per *lane-level adder operation* (the unit
  the ST2 carry-speculation mechanism operates on): PC, thread identity,
  the adder-domain operands (post SUB-inversion, post mantissa
  alignment), the architectural carry-in, the adder width and the logical
  result value.
* :class:`InstStream` — one row per *warp-level dynamic instruction*
  (every opcode, not only adds): consumed by the instruction-mix study
  (Figure 1), the activity counters behind the power model, and the
  cycle-approximate timing pipeline.

Rows are recorded per block and interleaved into a global logical-time
order at finalisation: ops with the same per-block sequence number are
ordered round-robin across blocks, approximating the concurrent
execution of blocks across (and within) SMs.  This interleave is what
lets Ltid-shared history tables observe the cross-warp "prefetching"
effect the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.opcodes import Opcode

_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}


def opcode_id(op: Opcode) -> int:
    return _OPCODE_INDEX[op]


def opcode_from_id(oid: int) -> Opcode:
    return _OPCODES[oid]


@dataclass
class AddTrace:
    """Struct-of-arrays trace of lane-level adder operations."""

    pc: np.ndarray
    gtid: np.ndarray
    ltid: np.ndarray
    warp: np.ndarray
    sm: np.ndarray
    block: np.ndarray
    seq: np.ndarray
    op_a: np.ndarray
    op_b: np.ndarray
    cin: np.ndarray
    width: np.ndarray
    opcode: np.ndarray
    value: np.ndarray
    pc_labels: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pc)

    @property
    def n_predictions(self) -> np.ndarray:
        """Per-row count of speculated carries (slices - 1, 8-bit slices)."""
        return (self.width.astype(np.int64) + 7) // 8 - 1

    def select(self, mask: np.ndarray) -> "AddTrace":
        """Row subset (mask or index array), preserving order."""
        return AddTrace(
            pc=self.pc[mask], gtid=self.gtid[mask], ltid=self.ltid[mask],
            warp=self.warp[mask], sm=self.sm[mask], block=self.block[mask],
            seq=self.seq[mask], op_a=self.op_a[mask], op_b=self.op_b[mask],
            cin=self.cin[mask], width=self.width[mask],
            opcode=self.opcode[mask], value=self.value[mask],
            pc_labels=self.pc_labels,
        )


@dataclass
class InstStream:
    """Struct-of-arrays stream of warp-level dynamic instructions."""

    seq: np.ndarray
    block: np.ndarray
    warp: np.ndarray       # global warp id
    sm: np.ndarray
    opcode: np.ndarray     # opcode ids
    active: np.ndarray     # active-thread count

    def __len__(self) -> int:
        return len(self.seq)

    def thread_instructions(self) -> int:
        """Total dynamic thread-level instruction count."""
        return int(self.active.sum())

    def mix(self) -> dict:
        """Thread-level dynamic instruction counts per Figure 1 category."""
        counts: dict = {}
        for oid in np.unique(self.opcode):
            op = opcode_from_id(int(oid))
            n = int(self.active[self.opcode == oid].sum())
            counts[op.mix] = counts.get(op.mix, 0) + n
        return counts

    def counts_by_opcode(self) -> dict:
        out = {}
        for oid in np.unique(self.opcode):
            out[opcode_from_id(int(oid))] = \
                int(self.active[self.opcode == oid].sum())
        return out


def _block_phase(block: np.ndarray, spread: int = 29) -> np.ndarray:
    """Deterministic pseudo-random execution-phase offset per block.

    Concurrent blocks do not execute in lockstep on real hardware: warp
    scheduling makes them drift apart by a few instructions.  Without
    this jitter, all blocks would contribute their seq-``s`` instruction
    (same PC!) back-to-back to the global order, which unrealistically
    flatters history tables that do not index by PC.
    """
    h = (block.astype(np.int64) * 1103515245 + 12345) >> 8
    return h % spread


class TraceBuilder:
    """Accumulates per-block rows and assembles globally-ordered traces."""

    def __init__(self) -> None:
        self._add_chunks: list = []
        self._inst_chunks: list = []
        self.pc_labels: list = []

    # -- recording (called by the DSL) ---------------------------------

    def record_add(self, *, pc: int, gtid, ltid, warp, sm: int, block: int,
                   seq: int, op_a, op_b, cin, width: int, opcode: Opcode,
                   value) -> None:
        n = len(np.atleast_1d(gtid))
        self._add_chunks.append((
            np.full(n, pc, dtype=np.int32),
            np.asarray(gtid, dtype=np.int64),
            np.asarray(ltid, dtype=np.int8),
            np.asarray(warp, dtype=np.int32),
            np.full(n, sm, dtype=np.int16),
            np.full(n, block, dtype=np.int32),
            np.full(n, seq, dtype=np.int64),
            np.asarray(op_a, dtype=np.uint64),
            np.asarray(op_b, dtype=np.uint64),
            (np.asarray(cin, dtype=np.uint8) if np.ndim(cin)
             else np.full(n, cin, dtype=np.uint8)),
            np.full(n, width, dtype=np.uint8),
            np.full(n, opcode_id(opcode), dtype=np.int16),
            np.asarray(value, dtype=np.float64),
        ))

    def record_inst(self, *, seq: int, block: int, warps, sm: int,
                    opcode: Opcode, active_per_warp) -> None:
        warps = np.asarray(warps, dtype=np.int32)
        active = np.asarray(active_per_warp, dtype=np.int32)
        keep = active > 0
        warps, active = warps[keep], active[keep]
        n = len(warps)
        if n == 0:
            return
        self._inst_chunks.append((
            np.full(n, seq, dtype=np.int64),
            np.full(n, block, dtype=np.int32),
            warps,
            np.full(n, sm, dtype=np.int16),
            np.full(n, opcode_id(opcode), dtype=np.int16),
            active,
        ))

    # -- finalisation ----------------------------------------------------

    def build(self) -> tuple:
        """Return ``(AddTrace, InstStream)`` in global logical-time order."""
        add = self._build_add()
        inst = self._build_inst()
        return add, inst

    def _build_add(self) -> AddTrace:
        if not self._add_chunks:
            empty = np.array([], dtype=np.int64)
            return AddTrace(*(empty.astype(t) for t in (
                np.int32, np.int64, np.int8, np.int32, np.int16, np.int32,
                np.int64, np.uint64, np.uint64, np.uint8, np.uint8,
                np.int16, np.float64)), pc_labels=self.pc_labels)
        cols = [np.concatenate(c) for c in zip(*self._add_chunks)]
        (pc, gtid, ltid, warp, sm, block, seq, op_a, op_b, cin, width,
         opcode, value) = cols
        order = np.lexsort((ltid, warp, block, seq + _block_phase(block)))
        return AddTrace(
            pc=pc[order], gtid=gtid[order], ltid=ltid[order],
            warp=warp[order], sm=sm[order], block=block[order],
            seq=seq[order], op_a=op_a[order], op_b=op_b[order],
            cin=cin[order], width=width[order], opcode=opcode[order],
            value=value[order], pc_labels=self.pc_labels,
        )

    def _build_inst(self) -> InstStream:
        if not self._inst_chunks:
            empty = np.array([], dtype=np.int64)
            return InstStream(empty, empty.astype(np.int32),
                              empty.astype(np.int32), empty.astype(np.int16),
                              empty.astype(np.int16), empty.astype(np.int32))
        cols = [np.concatenate(c) for c in zip(*self._inst_chunks)]
        seq, block, warp, sm, opcode, active = cols
        order = np.lexsort((warp, block, seq + _block_phase(block)))
        return InstStream(seq=seq[order], block=block[order],
                          warp=warp[order], sm=sm[order],
                          opcode=opcode[order], active=active[order])
