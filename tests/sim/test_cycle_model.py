"""Cycle-driven SM model: structure, stalls, CRF ports, policies."""

import pytest

from repro.kernels import pathfinder, sgemm
from repro.sim.config import LaunchConfig
from repro.sim.cycle_model import CycleModel, compare_policies
from repro.sim.functional import GridLauncher
from repro.sim.pipeline import simulate_sm


@pytest.fixture(scope="module")
def small_run():
    return pathfinder.prepare(scale=0.25, seed=0).run()


class TestBasics:
    def test_all_instructions_retire(self, small_run):
        stats = CycleModel().simulate(small_run.insts, small_run.launch)
        assert stats.instructions > 0
        assert stats.cycles > 0
        assert 0 < stats.issued_per_cycle <= 4.0

    def test_deterministic(self, small_run):
        a = CycleModel().simulate(small_run.insts, small_run.launch)
        b = CycleModel().simulate(small_run.insts, small_run.launch)
        assert a.cycles == b.cycles
        assert a.stall_breakdown() == b.stall_breakdown()

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            CycleModel(policy="fifo")

    def test_agrees_with_event_model_in_magnitude(self, small_run):
        """Two independent models of the same machine must land within
        a small factor of each other."""
        cyc = CycleModel().simulate(small_run.insts, small_run.launch)
        ev = simulate_sm(small_run.insts, small_run.launch)
        ratio = cyc.cycles / ev.cycles
        assert 0.25 < ratio < 4.0


class TestStallAccounting:
    def test_dependency_stalls_dominate_serial_code(self):
        """A single warp of back-to-back dependent adds is pure
        dependency stall."""
        def chain(k):
            acc = k.thread_id()
            for _i in k.range(64):
                acc = k.iadd(acc, 1)

        launcher = GridLauncher()
        run = launcher.run(chain, LaunchConfig(1, 32))
        stats = CycleModel().simulate(run.insts, run.launch)
        bd = stats.stall_breakdown()
        assert bd["dependency"] > bd["functional units"]

    def test_crf_reads_counted_for_adder_ops_only(self):
        def mixed(k):
            k.iadd(1, 2)      # CRF read
            k.ixor(1, 2)      # no CRF involvement
            k.imul(1, 2)      # no CRF involvement

        launcher = GridLauncher()
        run = launcher.run(mixed, LaunchConfig(1, 64))
        stats = CycleModel().simulate(run.insts, run.launch)
        assert stats.crf_reads == 2      # one iadd per warp, 2 warps

    def test_fewer_crf_ports_more_conflicts(self, small_run):
        wide = CycleModel(crf_read_ports=4).simulate(
            small_run.insts, small_run.launch)
        narrow = CycleModel(crf_read_ports=1).simulate(
            small_run.insts, small_run.launch)
        assert narrow.crf_read_port_conflicts \
            >= wide.crf_read_port_conflicts

    def test_write_conflicts_detected(self, small_run):
        stats = CycleModel().simulate(small_run.insts, small_run.launch)
        assert stats.crf_write_conflicts >= 0


class TestPolicies:
    def test_both_policies_complete(self, small_run):
        results = compare_policies(small_run.insts, small_run.launch)
        assert set(results) == {"gto", "lrr"}
        assert all(r.instructions == results["gto"].instructions
                   for r in results.values())

    def test_policies_produce_different_schedules(self):
        """On an FU-contended multiwarp kernel the two policies must
        observably diverge (cycles or stall pattern)."""
        run = sgemm.prepare(scale=0.5, seed=0).run()
        results = compare_policies(run.insts, run.launch)
        gto, lrr = results["gto"], results["lrr"]
        assert (gto.cycles != lrr.cycles
                or gto.stall_breakdown() != lrr.stall_breakdown())


class TestST2Mode:
    def test_mispredicts_counted(self, small_run):
        from repro.core.predictors import run_speculation
        from repro.core.speculation import ST2_DESIGN
        from repro.sim.pipeline import warp_misprediction_map
        res = run_speculation(small_run.trace, ST2_DESIGN)
        mp = warp_misprediction_map(small_run.trace, res.mispredicted)
        stats = CycleModel().simulate(small_run.insts, small_run.launch,
                                      mp)
        assert stats.extra_recompute_insts == len(mp)

    def test_deviation_is_small(self, small_run):
        """Paper phrasing: execution time 'within 0.36 % of baseline on
        average' — the cycle model's paired deviation must stay small
        even though scheduling perturbations make its sign noisy."""
        from repro.core.predictors import run_speculation
        from repro.core.speculation import ST2_DESIGN
        from repro.sim.pipeline import warp_misprediction_map
        res = run_speculation(small_run.trace, ST2_DESIGN)
        mp = warp_misprediction_map(small_run.trace, res.mispredicted)
        base = CycleModel().simulate(small_run.insts, small_run.launch)
        st2 = CycleModel().simulate(small_run.insts, small_run.launch,
                                    mp)
        assert abs(st2.cycles / base.cycles - 1) < 0.10
