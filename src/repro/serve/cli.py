"""``st2-serve`` — run the experiment service daemon.

Examples::

    st2-serve --workers 4 --trace-store /tmp/traces
    st2-serve --port 8787 --no-cache --metrics-out metrics.json
    st2-serve --show-config --json     # resolved config, no daemon

The daemon serves until SIGTERM/SIGINT (or ``POST /v1/admin/drain``),
then drains gracefully: new submissions get 503, in-flight jobs
finish, workers join, and — when ``--metrics-out`` is given — the
final observability snapshot is written in ``metrics.json`` format.
"""

from __future__ import annotations

import asyncio
import os
import sys

from repro import cli_common, obs
from repro.serve.state import (DEFAULT_CLIENT_QUOTA,
                               DEFAULT_MAX_QUEUED_UNITS)

PROG = "st2-serve"


def build_parser():
    parser = cli_common.build_parser(
        PROG, "Serve ST2 experiment jobs over HTTP/JSON: a sharded "
              "worker pool with request coalescing, per-client "
              "quotas and graceful drain.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default %(default)s)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: pick a free port "
                             "and print it)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes / trace shards "
                             "(default %(default)s)")
    parser.add_argument("--trace-store", metavar="DIR", default=None,
                        help="shared trace store directory (default: "
                             "per-worker in-process memo only)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--client-quota", type=int,
                        default=DEFAULT_CLIENT_QUOTA, metavar="N",
                        help="max unresolved units per client "
                             "(default %(default)s)")
    parser.add_argument("--max-queued-units", type=int,
                        default=DEFAULT_MAX_QUEUED_UNITS, metavar="N",
                        help="max unresolved units server-wide "
                             "(default %(default)s)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the final observability snapshot "
                             "as metrics.json on shutdown")
    parser.add_argument("--show-config", action="store_true",
                        help="print the resolved configuration and "
                             "exit without starting the daemon")
    cli_common.add_json_flag(parser)
    return parser


def _resolved_config(args) -> dict:
    return {
        "host": args.host,
        "port": args.port,
        "workers": args.workers,
        "trace_store": args.trace_store,
        "cache_dir": args.cache_dir,
        "use_cache": not args.no_cache,
        "client_quota": args.client_quota,
        "max_queued_units": args.max_queued_units,
        "metrics_out": args.metrics_out,
    }


def _build_app(args):
    from repro.runner.cache import ResultCache
    from repro.serve.app import ServeApp
    from repro.sim.trace_store import TraceStore

    store = TraceStore(args.trace_store) \
        if args.trace_store is not None else None
    cache = ResultCache(args.cache_dir) \
        if args.cache_dir is not None else None
    return ServeApp(shards=args.workers, trace_store=store,
                    cache=cache, use_cache=not args.no_cache,
                    client_quota=args.client_quota,
                    max_queued_units=args.max_queued_units,
                    host=args.host, port=args.port)


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        return cli_common.fail(PROG, "--workers must be >= 1")
    if args.show_config:
        config = _resolved_config(args)
        if args.json:
            cli_common.emit_json(config)
        else:
            for name, value in config.items():
                print(f"{name:>18}: {value}")
        return cli_common.EXIT_OK

    app = _build_app(args)

    def announce(started):
        if args.json:
            cli_common.emit_json({"address": started.server.address,
                                  "workers": args.workers,
                                  "pid": os.getpid()})
        else:
            print(f"{PROG}: serving on {started.server.address} "
                  f"with {args.workers} workers", file=sys.stderr)
        sys.stdout.flush()

    try:
        asyncio.run(_serve(app, announce))
    except OSError as exc:              # bind failure, bad interface
        return cli_common.fail(PROG, str(exc))
    if args.metrics_out is not None:
        obs.write_metrics(args.metrics_out, app.registry.snapshot(),
                          meta={"tool": PROG,
                                "workers": args.workers})
        if not args.json:
            print(f"{PROG}: metrics written to {args.metrics_out}",
                  file=sys.stderr)
    return cli_common.EXIT_OK


async def _serve(app, announce) -> None:
    from repro.serve.app import run_app

    await run_app(app, announce=announce)


def console_main() -> int:
    return cli_common.run_cli(main)


if __name__ == "__main__":
    sys.exit(console_main())
