"""``st2-lint`` command-line entry point.

Exit codes follow the shared contract (:mod:`repro.cli_common`):
0 — clean (or every finding suppressed/baselined), 1 — new
unsuppressed findings, 2 — usage or parse errors.  ``--json`` emits
the findings as one machine-readable document.
"""

from __future__ import annotations

import argparse
import sys

from repro import cli_common
from repro.lint.analyzer import ALL_RULES, lint_paths
from repro.lint.baseline import (load_baseline, new_findings,
                                 write_baseline)
from repro.lint.findings import RULES


def _parse_rules(spec: str):
    rules = tuple(r.strip() for r in spec.split(",") if r.strip())
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"choose from {', '.join(ALL_RULES)}")
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        "st2-lint",
        "Static correctness analyzer for the ST2 kernel DSL "
        "(rules L1-L5).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--rules", type=_parse_rules, default=None,
                        metavar="L1,L2,...",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--baseline", metavar="FILE",
                        help="accept findings recorded in this "
                             "baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    cli_common.add_json_flag(parser)
    return parser


def _finding_record(f) -> dict:
    return {"path": f.path, "line": f.line, "rule": f.rule,
            "message": f.message, "suppressed": f.suppressed}


def main(argv=None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.json:
            cli_common.emit_json(dict(RULES), out=out)
        else:
            for rule, text in RULES.items():
                print(f"{rule}  {text}", file=out)
        return cli_common.EXIT_OK

    findings = lint_paths(args.paths, rules=args.rules)

    errors = [f for f in findings if f.rule == "E0"]
    for f in errors:
        print(f.format(), file=out)
    if errors:
        return cli_common.EXIT_USAGE

    if args.write_baseline:
        recorded = write_baseline(args.write_baseline, findings)
        print(f"st2-lint: wrote {sum(recorded.values())} finding(s) "
              f"to {args.write_baseline}", file=out)
        return 0

    baseline = {}
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"st2-lint: bad baseline: {exc}", file=out)
            return 2

    fresh = new_findings(findings, baseline)
    shown = fresh if not args.show_suppressed else \
        fresh + [f for f in findings if f.suppressed]
    shown = sorted(shown, key=lambda f: (f.path, f.line, f.rule))

    n_sup = sum(1 for f in findings if f.suppressed)
    n_base = sum(1 for f in findings if not f.suppressed) - len(fresh)

    if args.json:
        cli_common.emit_json({
            "findings": [_finding_record(f) for f in shown],
            "fresh": len(fresh), "suppressed": n_sup,
            "baselined": n_base, "clean": not fresh}, out=out)
        return cli_common.EXIT_PROBLEMS if fresh else cli_common.EXIT_OK

    for f in shown:
        print(f.format(), file=out)
    tail = []
    if n_sup:
        tail.append(f"{n_sup} suppressed")
    if n_base:
        tail.append(f"{n_base} baselined")
    note = f" ({', '.join(tail)})" if tail else ""
    if fresh:
        print(f"st2-lint: {len(fresh)} finding(s){note}", file=out)
        return cli_common.EXIT_PROBLEMS
    print(f"st2-lint: clean{note}", file=out)
    return cli_common.EXIT_OK


def console_main() -> None:
    raise SystemExit(cli_common.run_cli(main))


if __name__ == "__main__":
    console_main()
