"""Call-site PC interning semantics."""

from repro.isa.pc import PcTable


def _two_sites(pcs):
    a = pcs.intern(depth=1)
    b = pcs.intern(depth=1)
    return a, b


class TestPcTable:
    def test_distinct_call_sites_get_distinct_pcs(self):
        pcs = PcTable()
        a, b = _two_sites(pcs)
        assert a != b

    def test_same_site_is_stable_across_calls(self):
        pcs = PcTable()

        def body():
            return pcs.intern(depth=1)

        first = body()
        for _ in range(5):
            assert body() == first

    def test_pcs_are_dense_in_first_execution_order(self):
        pcs = PcTable()
        a, b = _two_sites(pcs)
        assert (a, b) == (0, 1)
        assert len(pcs) == 2

    def test_tags_disambiguate_one_site(self):
        pcs = PcTable()

        def op():
            main = pcs.intern(depth=1)
            addr = pcs.intern(depth=1, tag="addr")
            return main, addr

        main, addr = op()
        assert main != addr
        assert op() == (main, addr)

    def test_labels_carry_function_and_line(self):
        pcs = PcTable()
        pc = pcs.intern(depth=1)
        label = pcs.label(pc)
        assert "test_labels_carry_function_and_line" in label
        assert ":" in label

    def test_fresh_table_is_independent(self):
        p1, p2 = PcTable(), PcTable()
        site = p1.intern(depth=1)
        assert len(p2) == 0
        assert p1.label(site)
