"""Parallel, cache-aware execution of runner work units.

Single-stage mode (no trace store): resolve every unit's cache key up
front, serve hits from disk in the parent, then fan the misses out over
a ``multiprocessing`` pool (``workers > 1``) or run them inline
(``workers <= 1`` — same code path as a pool worker, which is what the
parallel-equals-serial guarantee rests on).

Two-stage mode (``options.trace_store`` set): the pending work is
split along the paper's own decoupling.  **Stage 1** fans out over the
*distinct* (kernel, scale, seed) keys behind the pending units and
populates the trace store, skipping entries that are already warm — so
an 18-kernel × 6-config grid executes each kernel functionally once,
not once per config per worker.  **Stage 2** fans out over the
(trace × config) evaluation units; every worker opens the stored trace
read-only via ``mmap``, sharing the OS page cache.

Results always come back in work-list order; the parent alone writes
result-cache entries.  Trace-store entries are published by workers
with an atomic directory rename, so concurrent captures cannot corrupt
an entry (first writer wins; both wrote identical bytes).
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro import obs
from repro.runner.cache import code_version, unit_key
from repro.runner.options import RunOptions
from repro.runner.units import (ModelBundle, UnitSpec, execute_unit,
                                unit_trace_key)

_WORKER_MODELS = ModelBundle()
_WORKER_STORE = None

#: Evaluation fan-outs at or below this many units run inline when the
#: requested engine is ``vec``: a batched unit costs milliseconds, so
#: the pool's fork + IPC overhead dominates small grids.  Inline and
#: pooled execution produce identical results and metrics (the
#: parallel-equals-serial guarantee), so the cutoff is purely a
#: latency choice.  ``auto`` and ``interp`` grids always honour
#: ``options.workers`` — their units may be interpreter-priced.
VEC_INLINE_MAX_UNITS = 16


def default_workers() -> int:
    """A safe parallelism default: the pool pays off quickly but the
    23-kernel suite cannot keep dozens of cores busy."""
    return max(1, min(4, os.cpu_count() or 1))


def _init_worker(store_root=None, need_models: bool = True) -> None:
    """Pool initializer: build the calibrated power model and the
    circuit-characterised adder model once per worker process (stage-1
    capture workers skip them), and open the shared trace store (when
    the run uses one).

    Model calibration runs inside a **discarded** obs scope: it
    functionally executes microbenchmarks whose instrumentation must
    not pollute the run's metrics — and must not do so *differently*
    between the inline path (once, in the parent) and the pooled path
    (once per worker)."""
    global _WORKER_STORE
    if need_models:
        with obs.scoped():
            _WORKER_MODELS.ensure()
    if store_root is not None:
        from repro.sim.trace_store import TraceStore
        _WORKER_STORE = TraceStore(store_root)
    else:
        _WORKER_STORE = None


def _run_one(item) -> tuple:
    """Stage-2 / single-stage work item: one unit, end to end, under a
    fresh obs scope whose snapshot travels home with the result (as the
    transient ``"obs"`` key — popped and merged by the parent)."""
    index, spec, store_key, engine = item
    with obs.scoped() as reg:
        with reg.span("runner.unit"):
            result = execute_unit(spec, models=_WORKER_MODELS,
                                  store=_WORKER_STORE,
                                  store_key=store_key, engine=engine)
    result.data["obs"] = reg.snapshot()
    return index, result


def _capture_one(item) -> tuple:
    """Stage-1 work item: functionally execute one distinct
    (kernel, scale, seed) and publish its trace.  Returns
    ``(key, captured, wall_s, obs_snapshot)``."""
    from repro.kernels import suite as kernel_suite

    key, kernel, scale, seed, version = item
    with obs.scoped() as reg:
        with reg.span("runner.trace.capture"):
            if _WORKER_STORE.has(key):
                created, wall_s = False, 0.0
            else:
                t0 = time.perf_counter()
                run = kernel_suite.run_kernel(kernel, scale=scale,
                                              seed=seed, use_cache=False)
                created = _WORKER_STORE.put(key, run,
                                            code_version=version,
                                            scale=scale, seed=seed)
                wall_s = time.perf_counter() - t0
    return key, created, wall_s, reg.snapshot()


def _pool_context():
    """Prefer fork (cheap, Linux CI); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _map_parallel(fn, items, workers, store_root=None,
                  need_models: bool = True, chunksize: int = 1):
    """Run ``fn`` over ``items`` inline or across a pool, yielding
    results unordered.  The inline path goes through the same worker
    entry points, which is what the parallel-equals-serial guarantee
    rests on.

    ``chunksize`` trades scheduling granularity for locality: the
    evaluation stage passes 2 on large work lists so that adjacent
    units — the work list is kernel-major, so usually two configs of
    the same trace — land on the same worker and share its warm
    trace-store handle and evaluation plan.  Results and metrics are
    scheduling-independent either way.
    """
    if not items:
        return
    if workers > 1 and len(items) > 1:
        ctx = _pool_context()
        with ctx.Pool(min(workers, len(items)),
                      initializer=_init_worker,
                      initargs=(store_root, need_models)) as pool:
            yield from pool.imap_unordered(fn, items, chunksize)
    else:
        _init_worker(store_root, need_models=need_models)
        for item in items:
            yield fn(item)


def run_units(specs, options: RunOptions = None) -> list:
    """Execute ``specs`` and return their results, in order.

    Each element is a typed :class:`~repro.st2.results.RunResult` —
    the :func:`~repro.runner.units.execute_unit` payload plus two
    runtime fields: ``key`` (the cache key) and ``cached`` (whether
    this invocation served it from disk).

    ``options`` is a :class:`~repro.runner.options.RunOptions`
    (``None`` means defaults).  After the call, ``options.stats``
    holds the invocation's stage accounting (``stage_capture_s``,
    ``stage_eval_s`` and — in two-stage mode — ``traces_captured`` /
    ``trace_store_hits``) and ``options.obs`` the invocation's
    observability registry: every counter and timer accumulated across
    the run, including merged per-worker snapshots (its snapshot is
    what ``st2-run`` writes next to the manifest as ``metrics.json``).
    """
    from repro.st2.results import RunResult

    options = options if options is not None else RunOptions()
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, UnitSpec):
            raise TypeError(f"expected UnitSpec, got {type(spec)!r}")
    with obs.scoped(options.obs) as reg:
        options.obs = reg
        cache = options.resolved_cache()
        use_cache = options.use_cache
        version = code_version()
        keys = [unit_key(spec, version) for spec in specs]
        results = [None] * len(specs)
        obs.add("runner.units", len(specs))

        pending = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            hit = cache.load(key) if use_cache else None
            if hit is not None:
                hit.update(key=key, cached=True)
                hit = RunResult(hit)
                results[i] = hit
                obs.add("runner.units.cached")
                options.notify(spec, hit)
            else:
                pending.append((i, spec))

        store = options.trace_store
        stats = {"stage_capture_s": 0.0, "stage_init_s": 0.0,
                 "stage_eval_s": 0.0}
        options.stats = stats

        trace_keys = {}             # unit index -> trace key (or None)
        if store is not None and pending:
            with reg.span("runner.stage.capture"):
                stats.update(_populate_store(store, pending, options,
                                             version, trace_keys))

        def finish(i, result):
            snap = result.data.pop("obs", None)
            if snap:
                reg.merge(snap)
            result.data.update(key=keys[i], cached=False)
            if store is not None:
                # provenance relative to *this invocation*: True only
                # if the trace was warm before stage 1 ran
                result.data["trace_cache_hit"] = \
                    trace_keys.get(i) in stats.get("warm_keys", ())
            if use_cache:
                cache.store(keys[i], result.to_dict())
            obs.add("runner.units.executed")
            results[i] = result
            options.notify(specs[i], result)

        if pending:
            with reg.span("runner.stage.init"):
                stats["stage_init_s"] = _prepare_eval(pending)
        t0 = time.perf_counter()
        if pending:
            items = [(i, spec, trace_keys.get(i), options.engine)
                     for i, spec in pending]
            store_root = str(store.root) if store is not None else None
            workers = options.workers
            if options.engine == "vec" \
                    and len(items) <= VEC_INLINE_MAX_UNITS:
                workers = 1
            chunk = 2 if len(items) >= 4 * max(workers, 1) else 1
            with reg.span("runner.stage.eval"):
                for i, result in _map_parallel(_run_one, items,
                                               workers, store_root,
                                               chunksize=chunk):
                    finish(i, result)
        stats["stage_eval_s"] = time.perf_counter() - t0
        stats.pop("warm_keys", None)
    return results


def _prepare_eval(pending) -> float:
    """Build the shared per-process state in the *parent* before the
    evaluation fan-out: the calibrated power + adder models and the
    per-kernel static carry facts.

    Pool workers are forked from the parent wherever fork exists
    (Linux, the CI runners), so warming these memos here means every
    worker inherits them instead of each paying the model calibration
    on first use inside the evaluation stage — ``stage_eval_s`` then
    measures evaluation, not interpreter start-up.  On spawn platforms
    the workers still build their own models in ``_init_worker``;
    results are identical either way.

    Model calibration runs inside a discarded obs scope for the same
    reason as in ``_init_worker``; the facts memo emits no obs at all.
    Returns the wall time spent (reported as ``stage_init_s``).
    """
    from repro.lint.facts import facts_for_kernel

    t0 = time.perf_counter()
    with obs.scoped():
        _WORKER_MODELS.ensure()
    for kernel in sorted({spec.kernel for _, spec in pending}):
        facts_for_kernel(kernel)
    return time.perf_counter() - t0


def _populate_store(store, pending, options: RunOptions,
                    version: str, trace_keys: dict) -> dict:
    """Stage 1: capture every distinct pending trace into the store.

    Fans out over (kernel, scale, seed) keys — never over configs —
    skipping entries that are already warm.
    """
    distinct = {}                   # trace key -> capture item
    for i, spec in pending:
        key = unit_trace_key(spec, version)
        trace_keys[i] = key
        distinct.setdefault(
            key, (key, spec.kernel, spec.scale, spec.seed, version))

    warm = frozenset(k for k in distinct if store.has(k))
    todo = [item for key, item in distinct.items() if key not in warm]

    t0 = time.perf_counter()
    captured = []
    registry = obs.get_obs()
    for key, created, wall_s, snap in _map_parallel(
            _capture_one, todo, options.workers, str(store.root),
            need_models=False):
        registry.merge(snap)
        if created:
            captured.append(key)
    obs.add("runner.traces.captured", len(captured))
    obs.add("runner.traces.warm", len(warm))
    return {
        "stage_capture_s": time.perf_counter() - t0,
        "traces_total": len(distinct),
        "traces_captured": len(captured),
        "trace_store_hits": len(warm),
        "warm_keys": warm,
    }


def run_suite_units(specs, options: RunOptions = None) -> dict:
    """Like :func:`run_units` but keyed ``{(kernel, config): result}``
    — the shape the benchmark fixtures want."""
    results = run_units(specs, options=options)
    return {(spec.kernel, spec.config.name): result
            for spec, result in zip(specs, results)}


class RunTimer:
    """Wall-clock + hit/miss accounting for one runner invocation."""

    def __init__(self):
        self.t0 = time.perf_counter()
        self.hits = 0
        self.misses = 0

    def observe(self, spec, result) -> None:
        if getattr(result, "cached", False):
            self.hits += 1
        else:
            self.misses += 1

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.t0

    def summary(self) -> dict:
        return {"wall_time_s": self.elapsed_s,
                "cache_hits": self.hits, "cache_misses": self.misses}
