"""Cycle-driven SM pipeline — the structural model of Figure 4.

Where :mod:`repro.sim.pipeline` is an event-driven approximation tuned
for speed, this model steps the SM cycle by cycle through the stages the
paper's Figure 4 draws:

* **issue** — ``schedulers_per_sm`` warp schedulers, each issuing one
  ready warp instruction per cycle (greedy-then-oldest or loose
  round-robin policy);
* **operand collection** — a pool of collector units; each instruction
  occupies one for ``1 + register-bank-conflict`` cycles. Adder-class
  instructions additionally read the Carry Register File: the CRF has a
  limited number of read ports per SM, and the read *piggy-backs on the
  operand collector* exactly as Section IV-C describes;
* **execute** — per-unit FU pools with initiation intervals; an ST2
  misprediction keeps the mispredicted lanes' adders busy one extra
  cycle and delays the warp's result by one cycle (the stall signal);
* **write-back** — adder instructions update the CRF; simultaneous
  writers to one entry are counted as conflicts (random arbitration
  drops all but one — dropped updates only stale predictions).

The model reports a stall breakdown (dependency / FU / collector / CRF
ports), which the event model cannot, and cross-checks its magnitudes.

A caveat the paper's own methodology shares: in a cycle-driven model,
tiny latency perturbations (the ST2 stalls) also perturb *scheduling
decisions*, so a single paired run measures "within X % of baseline"
rather than a strictly-positive slowdown — use
:func:`repro.sim.pipeline.simulate_sm_pair` (shared-schedule paired
simulation) when the isolated stall cost is the quantity of interest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.isa.opcodes import FunctionalUnit
from repro.sim.config import GPUConfig, TITAN_V
from repro.sim.pipeline import _pool_width, _resident_blocks
from repro.sim.trace import opcode_from_id

ILP_DEPTH = 2


@dataclass
class CycleStats:
    """Outcome of one cycle-driven simulation."""

    cycles: int
    instructions: int
    issued_per_cycle: float
    stall_dependency: int
    stall_fu: int
    stall_collector: int
    crf_reads: int
    crf_read_port_conflicts: int
    crf_write_conflicts: int
    extra_recompute_insts: int

    def stall_breakdown(self) -> dict:
        return {"dependency": self.stall_dependency,
                "functional units": self.stall_fu,
                "operand collector": self.stall_collector}


@dataclass
class _WarpState:
    rows: np.ndarray
    ptr: int = 0
    completions: list = field(default_factory=list)
    last_issue: int = -10**9

    def done(self) -> bool:
        return self.ptr >= len(self.rows)


class CycleModel:
    """One SM, cycle by cycle."""

    def __init__(self, gpu: GPUConfig = TITAN_V, policy: str = "gto",
                 n_collectors: int = 8, n_banks: int = 16,
                 crf_read_ports: int = 2, seed: int = 0):
        if policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {policy!r}")
        self.gpu = gpu
        self.policy = policy
        self.n_collectors = n_collectors
        self.n_banks = n_banks
        self.crf_read_ports = crf_read_ports
        self._rng = np.random.default_rng(seed)

    # -- register-bank synthesis ---------------------------------------

    def _bank_conflicts(self, pc: int, n_sources: int = 2) -> int:
        """Deterministic pseudo register allocation: operand j of the
        instruction at ``pc`` lives in bank ``hash(pc, j) % banks``;
        same-bank operands serialise the collector."""
        banks = {(pc * 2654435761 + j * 40503) % self.n_banks
                 for j in range(n_sources)}
        return n_sources - len(banks)

    # -- main loop -------------------------------------------------------

    def simulate(self, insts, launch, warp_mispredicts: dict = None
                 ) -> CycleStats:
        gpu = self.gpu
        resident = _resident_blocks(insts, gpu, launch.block_threads)
        sel = np.isin(insts.block, resident)
        blocks = insts.block[sel]
        seqs = insts.seq[sel]
        warps = insts.warp[sel]
        opcodes = insts.opcode[sel]
        order = np.lexsort((seqs, warps))
        blocks, seqs, warps, opcodes = (a[order] for a in
                                        (blocks, seqs, warps, opcodes))
        mispred = warp_mispredicts or {}

        states = {int(w): _WarpState(rows=np.nonzero(warps == w)[0])
                  for w in np.unique(warps)}
        warp_order = sorted(states)
        fu_free = {u: 0.0 for u in FunctionalUnit}
        collectors_free_at: list = [0] * self.n_collectors

        cycle = 0
        issued_total = 0
        stall_dep = stall_fu = stall_coll = 0
        crf_reads = crf_read_conflicts = crf_write_conflicts = 0
        extra = 0
        pending_writebacks: dict = {}
        n_insts = len(blocks)
        lrr_next = 0
        last_issued_warp = -1

        guard = 0
        while any(not s.done() for s in states.values()):
            guard += 1
            if guard > 10_000_000:
                raise RuntimeError("cycle model failed to converge")

            # write-back: CRF entry conflicts among this cycle's writers
            writers = pending_writebacks.pop(cycle, [])
            if writers:
                entries: dict = {}
                for entry in writers:
                    entries[entry] = entries.get(entry, 0) + 1
                crf_write_conflicts += sum(v - 1 for v in
                                           entries.values())

            # issue stage: each scheduler picks one ready warp
            candidates = self._schedule_order(warp_order, states,
                                              last_issued_warp, lrr_next)
            issued_this_cycle = 0
            crf_reads_this_cycle = 0
            for w in candidates:
                if issued_this_cycle >= gpu.schedulers_per_sm:
                    break
                state = states[w]
                if state.done():
                    continue
                row = state.rows[state.ptr]
                op = opcode_from_id(int(opcodes[row]))

                # dependency on instruction ILP_DEPTH back
                if len(state.completions) >= ILP_DEPTH and \
                        state.completions[-ILP_DEPTH] > cycle:
                    stall_dep += 1
                    continue

                unit = op.unit
                width = _pool_width(gpu, unit)
                dispatch = (math.ceil(gpu.warp_size
                                      / max(width // 4, 1))
                            if unit != FunctionalUnit.CONTROL else 1)
                # operand collector allocation
                coll = min(range(self.n_collectors),
                           key=lambda i: collectors_free_at[i])
                if collectors_free_at[coll] > cycle:
                    stall_coll += 1
                    continue
                collect = 1 + self._bank_conflicts(int(seqs[row]))
                crf_port_wait = (op.is_adder_op and
                                 crf_reads_this_cycle + 1
                                 > self.crf_read_ports)
                if crf_port_wait:
                    collect += 1          # wait for a CRF port

                # the FU must accept the op when collection finishes
                # (it is free to serve other warps while we collect)
                if fu_free[unit] > cycle + collect:
                    stall_fu += 1
                    continue
                # committed: account the CRF traffic exactly once
                if op.is_adder_op:
                    crf_reads += 1
                    crf_reads_this_cycle += 1
                    if crf_port_wait:
                        crf_read_conflicts += 1
                collectors_free_at[coll] = cycle + collect

                miss_frac = mispred.get(
                    (int(blocks[row]), int(seqs[row]), w), 0.0)
                if miss_frac > 0:
                    extra += 1
                fu_free[unit] = cycle + collect + dispatch + miss_frac
                done = cycle + collect + dispatch + op.latency \
                    + (1 if miss_frac > 0 else 0)
                state.completions.append(done)
                if len(state.completions) > 4:
                    del state.completions[0:len(state.completions) - 4]
                state.ptr += 1
                state.last_issue = cycle
                if op.is_adder_op:
                    entry = int(seqs[row]) % 16       # PC[3:0] proxy
                    pending_writebacks.setdefault(
                        int(done), []).append(entry)
                issued_this_cycle += 1
                issued_total += 1
                last_issued_warp = w
            lrr_next = (lrr_next + 1) % max(len(warp_order), 1)
            cycle += 1

        obs.add("sim.cycle.instructions", n_insts)
        obs.add("sim.cycle.cycles", cycle)
        obs.add("sim.cycle.stall_dependency", stall_dep)
        obs.add("sim.cycle.stall_fu", stall_fu)
        obs.add("sim.cycle.stall_collector", stall_coll)
        obs.add("sim.cycle.crf_reads", crf_reads)
        obs.add("sim.cycle.crf_read_port_conflicts", crf_read_conflicts)
        obs.add("sim.cycle.crf_write_conflicts", crf_write_conflicts)
        return CycleStats(
            cycles=cycle, instructions=n_insts,
            issued_per_cycle=issued_total / max(cycle, 1),
            stall_dependency=stall_dep, stall_fu=stall_fu,
            stall_collector=stall_coll, crf_reads=crf_reads,
            crf_read_port_conflicts=crf_read_conflicts,
            crf_write_conflicts=crf_write_conflicts,
            extra_recompute_insts=extra)

    def _schedule_order(self, warp_order, states, last_issued, lrr_next):
        """Warp visiting order per the scheduler policy."""
        if self.policy == "gto":
            # greedy: last-issued warp first, then oldest (lowest id)
            if last_issued in states and not states[last_issued].done():
                return [last_issued] + [w for w in warp_order
                                        if w != last_issued]
            return list(warp_order)
        # loose round-robin: rotate the start point each cycle
        n = len(warp_order)
        return [warp_order[(lrr_next + i) % n] for i in range(n)]


def compare_policies(insts, launch, gpu: GPUConfig = TITAN_V) -> dict:
    """Makespan under both scheduler policies.

    On dependency-bound kernels loose round-robin tends to win (greedy
    re-picks a warp that immediately stalls on its own result); GTO's
    advantage (cache locality on memory-bound kernels) is outside this
    model's scope — the study shows the *sensitivity*, not a winner."""
    return {policy: CycleModel(gpu, policy=policy).simulate(insts, launch)
            for policy in ("gto", "lrr")}
