"""Calibration + validation workflow (paper Section V-C)."""

import pytest

from repro.kernels.suite import run_suite
from repro.power.activity import activity_from_run
from repro.power.calibration import calibrate, calibrated_model
from repro.power.hardware import (TRUE_P_CONST_W, TRUE_P_IDLE_SM_W,
                                  SyntheticSilicon)
from repro.power.validation import validate
from repro.sim.pipeline import simulate_sm


@pytest.fixture(scope="module")
def calibration():
    return calibrate(SyntheticSilicon(seed=11))


class TestCalibration:
    def test_recovers_constant_power(self, calibration):
        assert calibration.model.p_const_w \
            == pytest.approx(TRUE_P_CONST_W, rel=0.15)

    def test_recovers_idle_sm_power(self, calibration):
        assert calibration.model.p_idle_sm_w \
            == pytest.approx(TRUE_P_IDLE_SM_W, rel=0.2)

    def test_scales_near_unity(self, calibration):
        """Model energies are roughly right, so fitted scales should be
        O(1) — none degenerate to zero, none explode."""
        for c, s in calibration.model.scales.items():
            assert 0.2 < s < 5.0, f"{c} scale degenerate: {s}"

    def test_training_error_small(self, calibration):
        assert calibration.training_mape < 0.06

    def test_uses_all_123_stressors(self, calibration):
        assert calibration.n_benchmarks == 123

    def test_memoised_model(self):
        assert calibrated_model(seed=0) is calibrated_model(seed=0)


class TestValidation:
    @pytest.fixture(scope="class")
    def result(self, calibration):
        runs = run_suite(scale=0.15, seed=0)
        acts = {n: activity_from_run(r, simulate_sm(r.insts, r.launch),
                                     name=n)
                for n, r in runs.items()}
        return validate(calibration.model, acts,
                        SyntheticSilicon(seed=11))

    def test_error_in_papers_regime(self, result):
        """Paper: 10.5 % +/- 3.8 %; the kernel suite is a held-out set
        so some error is expected, but it must stay usable."""
        assert 0.01 < result.mape < 0.20

    def test_strong_correlation(self, result):
        """Paper: Pearson r = 0.8."""
        assert result.pearson_r > 0.75

    def test_ci_reported(self, result):
        assert result.mape_ci95 > 0

    def test_summary_format(self, result):
        s = result.summary()
        assert "MAPE" in s and "Pearson" in s and "23 kernels" in s

    def test_validation_is_out_of_sample(self, result):
        """No kernel name may appear among the stressor names."""
        from repro.power.microbench import build_microbenchmarks
        stressors = {m.name for m in build_microbenchmarks()}
        assert not (set(result.kernel_names) & stressors)
