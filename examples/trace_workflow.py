#!/usr/bin/env python
"""Trace-driven workflow: capture once, explore many times.

Design-space sweeps re-analyse the same execution over and over; this
example captures a kernel's trace to disk, reloads it, and shows that
every study reproduces bit-for-bit from the file — the same decoupling
GPGPU-Sim users get from PTX trace files.

Run:  python examples/trace_workflow.py
"""

import tempfile
import time
from pathlib import Path

from repro.core.predictors import run_speculation
from repro.core.speculation import DESIGN_LADDER, ST2_DESIGN
from repro.kernels.suite import spec_by_name
from repro.sim.trace_io import load_trace, save_kernel_run


def main() -> None:
    # -- capture -----------------------------------------------------------
    t0 = time.time()
    run = spec_by_name("msort_K2").run(scale=1.0, seed=0)
    capture_s = time.time() - t0
    print(f"captured msort_K2: {len(run.trace):,} adder ops in "
          f"{capture_s:.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "msort_K2.npz"
        save_kernel_run(path, run, {"scale": 1.0, "seed": 0})
        print(f"persisted to {path.name}: "
              f"{path.stat().st_size / 1024:.0f} kB compressed")

        # -- reload and re-analyse ----------------------------------------
        trace, insts, meta = load_trace(path)
        print(f"reloaded: kernel={meta['kernel']} "
              f"({meta['n_static_pcs']} static PCs)")

        t0 = time.time()
        fresh = run_speculation(run.trace, ST2_DESIGN)
        loaded = run_speculation(trace, ST2_DESIGN)
        assert fresh.thread_misprediction_rate \
            == loaded.thread_misprediction_rate
        print(f"ST2 misprediction from file: "
              f"{loaded.thread_misprediction_rate:.2%} "
              "(bit-identical to the live trace)")

        # a full ladder sweep costs only analysis time now
        for config in DESIGN_LADDER[:4]:
            rate = run_speculation(
                trace, config).thread_misprediction_rate
            print(f"  {config.name:18s} {rate:6.1%}")
        print(f"ladder exploration from file: {time.time() - t0:.2f}s "
              "(no re-execution)")


if __name__ == "__main__":
    main()
