"""Correctness and latency semantics of the sliced adder models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops
from repro.core.adder import (CarrySelectAdder, ReferenceAdder, ST2Adder,
                              verify_outcome)
from repro.core.slices import (FP32_MANTISSA, FP64_MANTISSA, INT32, INT64,
                               AdderGeometry)

GEOMETRIES = [INT64, INT32, FP32_MANTISSA, FP64_MANTISSA]


def _rand_ops(rng, geo, n=64):
    m = bitops.mask(geo.width)
    a = rng.integers(0, m + 1, n, dtype=np.uint64) & np.uint64(m)
    b = rng.integers(0, m + 1, n, dtype=np.uint64) & np.uint64(m)
    return a, b


class TestReferenceAdder:
    @pytest.mark.parametrize("geo", GEOMETRIES)
    def test_always_one_cycle(self, geo, rng):
        a, b = _rand_ops(rng, geo)
        out = ReferenceAdder(geo).add(a, b)
        assert (out.cycles == 1).all()
        assert not out.mispredicted.any()
        assert verify_outcome(out, a, b, geo.width)

    def test_sub(self, rng):
        adder = ReferenceAdder(INT32)
        out = adder.sub(np.array([100]), np.array([42]))
        assert int(out.result[0]) == 58


class TestCSLA:
    def test_slice_computations(self):
        assert CarrySelectAdder(INT64).slice_computations_per_add() == 15
        assert CarrySelectAdder(FP32_MANTISSA).slice_computations_per_add() == 5


class TestST2Correctness:
    """ST2 must produce the correct sum under ANY prediction vector."""

    @pytest.mark.parametrize("geo", GEOMETRIES)
    def test_correct_under_random_predictions(self, geo, rng):
        a, b = _rand_ops(rng, geo, 256)
        preds = rng.integers(0, 2, (256, geo.n_predictions)).astype(np.uint8)
        out = ST2Adder(geo).add(a, b, preds)
        assert verify_outcome(out, a, b, geo.width)

    @given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1),
           p=st.integers(0, 1))
    @settings(max_examples=200)
    def test_exhaustive_small(self, a, b, p):
        geo = AdderGeometry(16)
        out = ST2Adder(geo).add(np.array([a], dtype=np.uint64),
                                np.array([b], dtype=np.uint64),
                                np.array([[p]], dtype=np.uint8))
        assert int(out.result[0]) == (a + b) % (1 << 16)

    def test_sub_matches_arithmetic(self, rng):
        geo = INT32
        a = rng.integers(0, 2**31, 64)
        b = rng.integers(0, 2**31, 64)
        preds = rng.integers(0, 2, (64, 3)).astype(np.uint8)
        out = ST2Adder(geo).sub(a, b, preds)
        expect = bitops.to_unsigned(a - b, 32)
        assert np.array_equal(out.result, expect)


class TestST2Latency:
    def test_perfect_prediction_single_cycle(self, rng):
        geo = INT64
        a, b = _rand_ops(rng, geo, 128)
        adder = ST2Adder(geo)
        truth = adder.add(a, b, np.zeros((128, 7), np.uint8)).slice_carries
        out = adder.add(a, b, truth[:, 1:])
        assert not out.mispredicted.any()
        assert (out.cycles == 1).all()
        assert (out.recomputed_slices == 0).all()

    def test_single_low_error_recomputes_all_above(self):
        """A mispredicted slice marks every higher slice suspect."""
        geo = INT64
        # operands with NO carries anywhere; mispredict slice 1's carry-in
        a = np.array([0], dtype=np.uint64)
        b = np.array([0], dtype=np.uint64)
        preds = np.zeros((1, 7), dtype=np.uint8)
        preds[0, 0] = 1  # wrong: carry into slice 1 predicted 1, actual 0
        out = ST2Adder(geo).add(a, b, preds)
        assert out.mispredicted[0]
        assert int(out.cycles[0]) == 2
        # slices 1..7 all suspect
        assert int(out.recomputed_slices[0]) == 7

    def test_high_slice_error_recomputes_few(self):
        geo = INT64
        a = np.array([0], dtype=np.uint64)
        b = np.array([0], dtype=np.uint64)
        preds = np.zeros((1, 7), dtype=np.uint8)
        preds[0, 6] = 1  # only the top slice's carry-in is wrong
        out = ST2Adder(geo).add(a, b, preds)
        assert int(out.recomputed_slices[0]) == 1

    def test_cascaded_error_detection(self):
        """A wrong prediction that flips a propagating slice's carry-out
        must flag downstream slices even if their predictions match the
        true carries."""
        geo = AdderGeometry(24)
        # slice 0: generates carry (0xFF + 0x01); slice 1 propagates
        # (0xFF + 0x00); slice 2 idle.
        a = np.array([0x00FFFF], dtype=np.uint64)
        b = np.array([0x000001], dtype=np.uint64)
        true = bitops.slice_carry_ins(a, b, 24, 8, 0)[0]
        assert list(true) == [0, 1, 1]
        # predict slice1 carry-in wrong (0): slice 1 then produces wrong
        # carry-out 0; slice 2's prediction (1, correct) now MISMATCHES
        # the observed cout -> E[2] fires too.
        preds = np.array([[0, 1]], dtype=np.uint8)
        out = ST2Adder(geo).add(a, b, preds)
        assert list(out.errors[0]) == [0, 1, 1]
        assert int(out.recomputed_slices[0]) == 2
        assert int(out.result[0]) == 0x010000

    def test_wrong_prediction_masked_by_propagation(self):
        """E[i] compares against the *observed* cycle-1 carry-out, so a
        wrong carry-in to a generating slice is harmless downstream."""
        geo = AdderGeometry(24)
        # slice 1 generates regardless of carry-in: 0xFF00 + 0xFF00
        a = np.array([0x00FF00], dtype=np.uint64)
        b = np.array([0x00FF00], dtype=np.uint64)
        true = bitops.slice_carry_ins(a, b, 24, 8, 0)[0]
        assert list(true) == [0, 0, 1]
        preds = np.array([[1, 1]], dtype=np.uint8)  # slice1 cin wrong
        out = ST2Adder(geo).add(a, b, preds)
        # E[1] fires (pred 1 vs slice0 cout 0); E[2] does not (slice1
        # generates 1 either way and pred was 1)
        assert list(out.errors[0]) == [0, 1, 0]
        # but suspect chain still covers slice 2
        assert int(out.recomputed_slices[0]) == 2

    def test_prediction_shape_validated(self):
        with pytest.raises(ValueError):
            ST2Adder(INT64).add(np.array([1]), np.array([2]),
                                np.zeros((1, 3), np.uint8))


class TestST2VectorCin:
    def test_per_lane_cin(self, rng):
        geo = INT32
        a = rng.integers(0, 2**31, 16)
        b = rng.integers(0, 2**31, 16)
        cin = rng.integers(0, 2, 16).astype(np.uint8)
        preds = rng.integers(0, 2, (16, 3)).astype(np.uint8)
        out = ST2Adder(geo).add(a, b, preds, cin=cin)
        expect = bitops.add_wrapped(a, b, 32, cin)
        assert np.array_equal(out.result, expect)
