"""st2-lint CLI exit codes, baselining, and the repaired-suite gate."""

import io
import textwrap
from pathlib import Path

from repro.lint.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

FIXTURES = {
    "L1": """
        def kernel(k, out):
            t = k.thread_id()
            x = t + 1
            k.st_global(out, t, x)
    """,
    "L2": """
        def step(k, node):
            return k.iadd(node, 1)

        def kernel(k, out):
            a = step(k, k.thread_id())
            b = step(k, a)
            k.st_global(out, a, b)
    """,
    "L3": """
        import numpy as np
        def kernel(k, out):
            t = k.thread_id()
            s = k.shared(64, np.int64)
            k.st_shared(s, t, t)
            v = k.ld_shared(s, k.isub(63, t))
            k.st_global(out, t, v)
    """,
    "L4": """
        def kernel(k, out):
            t = k.thread_id()
            with k.where(k.lt(t, 16)):
                k.syncthreads()
    """,
    "L5": """
        import numpy as np
        def draw(n):
            return np.random.rand(n)
    """,
}


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def write_fixture(tmp_path, rule):
    # L5 only applies to cache-hashed modules: mimic a src/repro/sim
    # layout so _module_is_hashed recognises the file
    parent = tmp_path / "repro" / "sim" if rule == "L5" else tmp_path
    parent.mkdir(parents=True, exist_ok=True)
    path = parent / f"fixture_{rule.lower()}.py"
    path.write_text(textwrap.dedent(FIXTURES[rule]))
    return path


class TestExitCodes:
    def test_each_rule_fails_its_fixture(self, tmp_path):
        for rule in ("L1", "L2", "L3", "L4", "L5"):
            path = write_fixture(tmp_path, rule)
            code, output = run([str(path)])
            assert code == 1, f"{rule} fixture did not fail: {output}"
            assert f" {rule}: " in output

    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(textwrap.dedent("""
            def kernel(k, out):
                t = k.thread_id()
                k.st_global(out, t, k.iadd(t, 1))
        """))
        code, output = run([str(path)])
        assert code == 0 and "clean" in output

    def test_parse_error_exits_two(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        code, output = run([str(path)])
        assert code == 2 and "E0" in output

    def test_list_rules(self):
        code, output = run(["--list-rules"])
        assert code == 0
        for rule in ("L1", "L2", "L3", "L4", "L5"):
            assert rule in output


class TestBaselineFlow:
    def test_write_then_check_is_clean(self, tmp_path):
        fixture = write_fixture(tmp_path, "L1")
        baseline = tmp_path / "baseline.json"
        code, _ = run([str(fixture), "--write-baseline", str(baseline)])
        assert code == 0
        code, output = run([str(fixture), "--baseline", str(baseline)])
        assert code == 0 and "baselined" in output

    def test_new_finding_breaks_through_baseline(self, tmp_path):
        fixture = write_fixture(tmp_path, "L1")
        baseline = tmp_path / "baseline.json"
        run([str(fixture), "--write-baseline", str(baseline)])
        src = fixture.read_text().replace("x = t + 1",
                                          "x = t + 1\n    y = t - 2")
        fixture.write_text(src)
        code, output = run([str(fixture), "--baseline", str(baseline)])
        assert code == 1 and "t - 2" not in output  # message, not source
        assert "L1" in output

    def test_rule_filter(self, tmp_path):
        fixture = write_fixture(tmp_path, "L1")
        code, _ = run([str(fixture), "--rules", "L2,L3"])
        assert code == 0


class TestRepairedSuite:
    def test_kernel_suite_is_clean(self):
        """Acceptance: st2-lint exits 0 over the shipped kernels."""
        code, output = run([str(REPO_SRC / "kernels")])
        assert code == 0, output

    def test_whole_tree_is_clean(self):
        code, output = run([str(REPO_SRC)])
        assert code == 0, output
