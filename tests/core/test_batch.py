"""The batched carry-speculation kernels vs their sequential
references.

Every function in :mod:`repro.core.batch` claims bit-identity with a
reference implementation in :mod:`repro.core.predictors` /
:mod:`repro.core.bitops`; these tests assert it on synthetic traces
that sweep odd widths (1, 7, 9, 23, 33, 63 ...) alongside the
canonical 23/32/52/64-bit geometries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bitops
from repro.core.batch import (_gen_prop_all, _peek_all,
                              _slice_carries_all, build_pack,
                              evaluate_trace_batch, predict_trace_batch,
                              previous_same_key_batch)
from repro.core.predictors import (MAX_PREDICTIONS, evaluate_trace,
                                   predict_trace, previous_same_key,
                                   trace_n_predictions, trace_peek,
                                   trace_slice_carries)
from repro.core.speculation import CASA, PREV, ST2_DESIGN, VALHALLA
from tests.conftest import make_trace

#: deliberately awkward adder geometries: single-slice rows, widths
#: one off a slice boundary, and the canonical suite widths
WIDTHS = (1, 7, 8, 9, 16, 23, 24, 32, 33, 52, 63, 64)

CONFIGS = [ST2_DESIGN, PREV, VALHALLA, CASA]


def odd_width_trace(seed: int, n: int = 400):
    """A random trace mixing every width in :data:`WIDTHS`, with
    full-range operands (bit 63 reachable for 64-bit rows)."""
    rng = np.random.default_rng(seed)
    width = rng.choice(WIDTHS, n).astype(np.uint8)
    hi = rng.integers(0, 1 << 32, n, dtype=np.uint64) << np.uint64(32)
    lo = rng.integers(0, 1 << 32, n, dtype=np.uint64)
    mask = np.uint64(0xFFFFFFFFFFFFFFFF) >> \
        (np.uint64(64) - width.astype(np.uint64))
    op_a = (hi | lo) & mask
    hi = rng.integers(0, 1 << 32, n, dtype=np.uint64) << np.uint64(32)
    lo = rng.integers(0, 1 << 32, n, dtype=np.uint64)
    op_b = (hi | lo) & mask
    gtid = rng.integers(0, 96, n)
    return make_trace(rng.integers(0, 8, n), gtid, gtid % 32,
                      op_a, op_b, cin=rng.integers(0, 2, n),
                      width=width, sm=gtid % 4)


@pytest.fixture(scope="module", params=[0, 1, 2])
def trace(request):
    return odd_width_trace(request.param)


class TestPackBuilders:
    def test_slice_carries_match_reference(self, trace):
        np.testing.assert_array_equal(_slice_carries_all(trace),
                                      trace_slice_carries(trace))

    def test_peek_matches_reference(self, trace):
        n_preds = trace_n_predictions(trace)
        pred_valid = (np.arange(MAX_PREDICTIONS)[None, :]
                      < n_preds[:, None])
        known, value = _peek_all(trace, pred_valid)
        ref_known, ref_value = trace_peek(trace)
        np.testing.assert_array_equal(known, ref_known)
        np.testing.assert_array_equal(value, ref_value)

    def test_gen_prop_match_bitops_loop(self, trace):
        """The one-pass G/P tables vs the per-row, per-slice
        :func:`bitops.carry_out` definition: ``g`` is the slice's
        carry-out under carry-in 0, ``p`` marks carry-in 1 flipping
        it."""
        gen, prop = _gen_prop_all(trace)
        for r in rows_sample(trace):
            w = int(trace.width[r])
            bounds = bitops.slice_bounds(w, 8)
            for j in range(8):
                if j >= len(bounds):
                    assert gen[r, j] == 0 and prop[r, j] == 0
                    continue
                lo, hi = bounds[j]
                sw = hi - lo
                sa = (int(trace.op_a[r]) >> lo) & ((1 << sw) - 1)
                sb = (int(trace.op_b[r]) >> lo) & ((1 << sw) - 1)
                g = int(bitops.carry_out(sa, sb, sw, cin=0))
                c1 = int(bitops.carry_out(sa, sb, sw, cin=1))
                assert gen[r, j] == g, (r, j, w)
                assert prop[r, j] == (c1 & ~g & 1), (r, j, w)

    def test_pack_rows_subset(self, trace):
        pack = build_pack(trace)
        idx = np.array([0, 5, 17, len(trace) - 1])
        sub = pack.rows(idx)
        assert sub.n_rows == len(idx)
        np.testing.assert_array_equal(sub.carries, pack.carries[idx])
        np.testing.assert_array_equal(sub.pred_valid,
                                      pack.pred_valid[idx])
        np.testing.assert_array_equal(sub.gen, pack.gen[idx])
        np.testing.assert_array_equal(sub.cin, pack.cin[idx])


def rows_sample(trace, per_width: int = 6):
    """A few row indices of every distinct width (keeps the pure-Python
    reference loop affordable)."""
    out = []
    for w in np.unique(trace.width):
        out.extend(np.nonzero(trace.width == w)[0][:per_width])
    return out


class TestPredictEvaluateParity:
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[c.name for c in CONFIGS])
    def test_predict_matches_reference(self, trace, config):
        pack = build_pack(trace)
        ref = predict_trace(trace, config)
        vec = predict_trace_batch(trace, config, pack)
        np.testing.assert_array_equal(vec.bits, ref.bits)
        np.testing.assert_array_equal(vec.has_prev, ref.has_prev)
        np.testing.assert_array_equal(vec.peek_known, ref.peek_known)

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[c.name for c in CONFIGS])
    def test_evaluate_matches_reference(self, trace, config):
        pack = build_pack(trace)
        pred = predict_trace(trace, config)
        ref = evaluate_trace(trace, pred)
        mis, rec, wrong = evaluate_trace_batch(pack, pred.bits)
        np.testing.assert_array_equal(mis, ref.mispredicted)
        np.testing.assert_array_equal(rec, ref.recomputed)
        np.testing.assert_array_equal(wrong, ref.wrong_bits)

    def test_evaluate_arbitrary_bits(self, trace):
        """Parity must hold for *any* prediction overlay, not just ones
        a mechanism produces (the static-fact path feeds synthetic
        bits)."""
        pack = build_pack(trace)
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, (len(trace), MAX_PREDICTIONS),
                            dtype=np.uint8)
        pred = predict_trace(trace, ST2_DESIGN)
        forged = type(pred)(config=pred.config, bits=bits,
                            has_prev=pred.has_prev,
                            peek_known=pred.peek_known)
        ref = evaluate_trace(trace, forged)
        mis, rec, wrong = evaluate_trace_batch(pack, bits)
        np.testing.assert_array_equal(mis, ref.mispredicted)
        np.testing.assert_array_equal(rec, ref.recomputed)
        np.testing.assert_array_equal(wrong, ref.wrong_bits)


class TestPreviousSameKeyBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_per_boundary_reference(self, seed):
        rng = np.random.default_rng(seed)
        n, k = 300, MAX_PREDICTIONS
        keys = rng.integers(0, 12, n)
        groups = np.repeat(np.arange((n + 3) // 4), 4)[:n]
        valid = rng.random((n, k)) < 0.6
        batch = previous_same_key_batch(keys, groups, valid)
        for j in range(k):
            ref = previous_same_key(keys, valid[:, j], groups)
            np.testing.assert_array_equal(batch[:, j], ref, err_msg=str(j))

    def test_short_input(self):
        prev = previous_same_key_batch(
            np.array([3]), np.array([0]),
            np.ones((1, MAX_PREDICTIONS), dtype=bool))
        assert (prev == -1).all()
