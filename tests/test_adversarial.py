"""Adversarial and degenerate inputs: the analysis stack must handle
pathological traces gracefully (no crashes, sane statistics)."""

import numpy as np

from repro.core.correlation import (intra_pc_value_spread,
                                    slice_carry_correlation,
                                    value_evolution)
from repro.core.predictors import (SpeculationConfig, carry_match_rate,
                                   run_speculation)
from repro.core.speculation import DESIGN_LADDER, ST2_DESIGN, explore
from tests.conftest import make_trace


def _spec_ok(trace):
    res = run_speculation(trace, ST2_DESIGN)
    assert 0.0 <= res.thread_misprediction_rate <= 1.0
    return res


class TestDegenerateTraces:
    def test_empty_trace(self):
        t = make_trace([], [], [], [], [])
        res = _spec_ok(t)
        assert res.n_ops == 0
        assert res.recomputed_per_misprediction == 0.0
        assert np.isnan(carry_match_rate(t, ST2_DESIGN))

    def test_single_row(self):
        t = make_trace([0], [0], [0], [1], [1])
        res = _spec_ok(t)
        assert res.n_ops == 1

    def test_single_thread_single_pc(self):
        t = make_trace([0] * 100, [0] * 100, [0] * 100,
                       np.arange(100), [1] * 100, width=32)
        _spec_ok(t)
        for point in explore(t, DESIGN_LADDER[:3]):
            assert 0.0 <= point.misprediction_rate <= 1.0

    def test_huge_pcs_do_not_overflow_keys(self):
        t = make_trace([2**20 - 1, 2**20 - 2] * 10, [0] * 20, [0] * 20,
                       [1] * 20, [1] * 20)
        cfg = SpeculationConfig("x", "prev", pc_index="full",
                                thread_key="gtid")
        rate = carry_match_rate(t, cfg)
        assert 0.0 <= rate <= 1.0

    def test_all_ones_operands(self):
        ones = np.full(64, (1 << 32) - 1, dtype=np.uint64)
        t = make_trace([0] * 64, range(64), np.arange(64) % 32,
                       ones, ones, width=32)
        res = _spec_ok(t)
        # -1 + -1: carries everywhere after warmup; predictable
        assert res.thread_misprediction_rate < 0.6

    def test_alternating_extremes(self):
        """Worst case for history: every op flips the carry pattern."""
        n = 200
        a = np.where(np.arange(n) % 2 == 0, 0,
                     (1 << 32) - 1).astype(np.uint64)
        t = make_trace([0] * n, [0] * n, [0] * n, a, a, width=32)
        res = _spec_ok(t)
        # same-key prediction is always one op behind -> mostly wrong,
        # but Peek statically resolves every boundary here (operand
        # slice MSbs agree with themselves), so ST2 still survives
        assert res.thread_misprediction_rate <= 1.0

    def test_antagonistic_alias_pattern(self):
        """PCs 0 and 16 alias under ModPC4 with opposite behaviours."""
        n = 400
        pcs = np.tile([0, 16], n // 2)
        a = np.where(pcs == 0, 1, (1 << 30) - 1).astype(np.uint64)
        t = make_trace(pcs, [0] * n, [0] * n, a, a, width=32)
        mod4 = run_speculation(t, SpeculationConfig(
            "mod4", "prev", pc_index="mod", pc_bits=4))
        mod8 = run_speculation(t, SpeculationConfig(
            "mod8", "prev", pc_index="mod", pc_bits=8))
        # more PC bits disambiguate the adversarial aliasing
        assert mod8.thread_misprediction_rate \
            <= mod4.thread_misprediction_rate


class TestDegenerateAnalyses:
    def test_value_evolution_on_tiny_trace(self):
        t = make_trace([0, 1], [0, 0], [0, 0], [1, 2], [3, 4])
        series = value_evolution(t, max_pcs=5)
        assert len(series) == 2

    def test_correlation_on_constant_values(self):
        t = make_trace([0] * 50, [0] * 50, [0] * 50, [7] * 50,
                       [7] * 50, width=32)
        assert intra_pc_value_spread(t) == 0.0
        summary = slice_carry_correlation(t)
        for rate in summary.match_rates.values():
            assert rate == 1.0 or np.isnan(rate)

    def test_mixed_width_minimal(self):
        t = make_trace([0, 0], [0, 0], [0, 0], [1, 1], [1, 1],
                       width=[23, 64])
        _spec_ok(t)
