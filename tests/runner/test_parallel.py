"""Parallel-vs-serial equivalence and pool scheduling behaviour."""

from __future__ import annotations

import pytest

from repro.runner import ResultCache, RunOptions, build_units, run_units
from repro.runner.pool import default_workers, run_suite_units
from repro.runner.units import results_equal

KERNELS = ["qrng_K2", "sortNets_K2"]       # the two fastest tracers


@pytest.fixture(scope="module")
def serial_results():
    units = build_units(KERNELS, aux=False)
    return units, run_units(units, RunOptions(workers=1,
                                              use_cache=False))


def test_parallel_equals_serial(serial_results):
    units, serial = serial_results
    parallel = run_units(units, RunOptions(workers=2, use_cache=False))
    assert len(parallel) == len(serial)
    for s, p in zip(serial, parallel):
        assert p.kernel == s.kernel         # order preserved
        assert results_equal(s, p), \
            f"parallel diverged from serial on {s.kernel}"


def test_parallel_cache_round_trip(tmp_path, serial_results):
    units, serial = serial_results
    cache = ResultCache(tmp_path)
    cold = run_units(units, RunOptions(workers=2, cache=cache))
    assert [r.cached for r in cold] == [False, False]
    warm = run_units(units, RunOptions(workers=2, cache=cache))
    assert [r.cached for r in warm] == [True, True]
    for s, c, w in zip(serial, cold, warm):
        assert results_equal(s, c)
        assert results_equal(c, w)


def test_progress_sees_every_unit(tmp_path, serial_results):
    units, _ = serial_results
    seen = []
    run_units(units, RunOptions(
        workers=2, cache=ResultCache(tmp_path),
        progress=lambda spec, result: seen.append(
            (spec.kernel, result.cached))))
    assert sorted(k for k, _ in seen) == sorted(KERNELS)
    assert all(not cached for _, cached in seen)


def test_run_suite_units_keying(tmp_path, serial_results):
    units, serial = serial_results
    keyed = run_suite_units(units, RunOptions(
        workers=1, cache=ResultCache(tmp_path)))
    for spec, expect in zip(units, serial):
        assert results_equal(keyed[(spec.kernel, spec.config.name)],
                             expect)


def test_rejects_non_unitspec():
    with pytest.raises(TypeError):
        run_units(["qrng_K2"], RunOptions(workers=1, use_cache=False))


def test_default_workers_bounded():
    assert 1 <= default_workers() <= 4


class TestRunOptionsOnly:
    """The RunOptions migration is complete: the pre-RunOptions
    keyword surface of ``run_units`` is gone, not deprecated."""

    def test_legacy_kwargs_rejected(self, serial_results):
        units, _ = serial_results
        for kwargs in ({"workers": 1}, {"use_cache": False},
                       {"cache": None}, {"progress": print},
                       {"frobnicate": True}):
            with pytest.raises(TypeError):
                run_units(units, **kwargs)

    def test_positional_options_still_work(self, serial_results):
        units, serial = serial_results
        again = run_units(units, RunOptions(workers=1,
                                            use_cache=False))
        for s, a in zip(serial, again):
            assert results_equal(s, a)

    def test_timer_hook_counts(self, tmp_path, serial_results):
        from repro.runner.pool import RunTimer
        units, _ = serial_results
        timer = RunTimer()
        opts = RunOptions(workers=1, cache=ResultCache(tmp_path),
                          timer=timer)
        run_units(units, opts)
        run_units(units, opts)
        assert timer.misses == len(units)
        assert timer.hits == len(units)
