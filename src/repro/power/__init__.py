"""GPUWattch-style power modelling: Eq. (1), the 123-stressor
calibration workflow against synthetic silicon, and validation."""

from repro.power.activity import ActivityVector, activity_from_run
from repro.power.calibration import calibrate, calibrated_model
from repro.power.components import Component
from repro.power.hardware import SyntheticSilicon
from repro.power.model import GPUPowerModel
from repro.power.validation import validate

__all__ = ["ActivityVector", "Component", "GPUPowerModel",
           "SyntheticSilicon", "activity_from_run", "calibrate",
           "calibrated_model", "validate"]
