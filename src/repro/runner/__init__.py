"""Parallel, persistently-cached experiment runner.

The runner executes (kernel × :class:`SpeculationConfig`) work units —
trace, speculate, time, energy — across a ``multiprocessing`` pool,
memoises completed units on disk keyed by a content hash that includes
the source-module versions, and records every invocation as a JSONL
manifest.  ``st2-run`` / ``python -m repro.runner`` is the CLI; the
benchmark suite drives the same machinery through
:func:`run_suite_units`.
"""

from repro.runner.cache import (ResultCache, code_version,
                                default_cache_dir, unit_key)
from repro.runner.manifest import read_manifest, write_manifest
from repro.runner.options import RunOptions
from repro.runner.pool import default_workers, run_suite_units, run_units
from repro.runner.units import (ENGINES, UnitSpec, build_units,
                                derive_unit_seed, execute_unit,
                                resolve_configs, results_equal,
                                unit_trace_key)

__all__ = [
    "ENGINES", "ResultCache", "RunOptions", "UnitSpec", "build_units",
    "code_version", "default_cache_dir", "default_workers",
    "derive_unit_seed", "execute_unit", "read_manifest",
    "resolve_configs", "results_equal", "run_suite_units", "run_units",
    "unit_key", "unit_trace_key", "write_manifest",
]
