"""Section VI overheads — level shifters and ST2 storage.

Paper numbers: level shifters < 0.68 % of the 815 mm^2 chip, ~0.6 W
static, ~470 uW worst-case dynamic, costing ~0.5 % of the savings
(18.5 % net system saving); storage 448 B CRF/SM (~35 kB chip) plus
~15 kB of DFFs — ~50 kB, 0.09 % of on-chip SRAM.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.st2.overheads import overhead_report


def _adder_rate(suite_evaluations):
    """Average chip-wide adder ops/s across the suite."""
    rates = []
    for e in suite_evaluations.values():
        # reconstruct ops/s from the kernel's activity counts
        rates.append(e.speculation.n_ops
                     / max(e.timing_baseline.duration_s(), 1e-9))
    return float(np.mean(rates))


def test_overheads(benchmark, suite_evaluations, artifact_dir):
    report = benchmark.pedantic(overhead_report, rounds=1, iterations=1)

    rate = _adder_rate(suite_evaluations)
    avg_power = float(np.mean(
        [e.energy.baseline.system_j
         / e.timing_baseline.duration_s()
         for e in suite_evaluations.values()]))
    dyn_w = report.shifter_dynamic_w(rate)
    penalty = report.savings_penalty(avg_power, rate)

    rows = [
        ("level shifters per chip", f"{report.n_level_shifters:,}"),
        ("shifter area", f"{report.shifter_area_mm2:.1f} mm^2 "
         f"({report.shifter_area_fraction:.2%} of chip; paper <0.68%)"),
        ("shifter static power", f"{report.shifter_static_w:.2f} W "
         "(paper ~0.6 W)"),
        ("shifter dynamic power", f"{dyn_w * 1e6:.0f} uW worst-case "
         "(paper ~470 uW)"),
        ("savings penalty", f"{penalty:.2%} (paper ~0.5%)"),
        ("CRF per SM", f"{report.crf_bytes_per_sm} B (paper 448 B)"),
        ("CRF per chip", f"{report.crf_bytes_chip / 1024:.0f} kB "
         "(paper ~35 kB)"),
        ("state DFFs per chip", f"{report.dff_bytes_chip / 1024:.0f} kB "
         "(paper ~15 kB)"),
        ("total ST2 storage", f"{report.total_storage_bytes / 1024:.0f} "
         "kB (paper ~50 kB)"),
        ("fraction of on-chip SRAM", f"{report.storage_fraction:.3%} "
         "(paper 0.09%)"),
    ]
    txt = table("ST2 GPU overheads", ["overhead", "value"], rows)
    save_artifact(artifact_dir, "overheads.txt", txt)

    assert report.crf_bytes_per_sm == 448
    assert 34_000 <= report.crf_bytes_chip <= 36_000
    assert 48_000 <= report.total_storage_bytes <= 52_000
    assert report.storage_fraction < 0.002
    assert report.shifter_area_fraction < 0.012
    assert report.shifter_static_w < 1.5
    assert penalty < 0.02
