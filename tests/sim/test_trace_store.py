"""The content-addressed, memory-mapped trace store."""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.kernels.suite import KERNEL_NAMES, run_suite
from repro.sim.trace_io import _ADD_COLUMNS, _INST_COLUMNS
from repro.sim.trace_store import (StoredRun, TraceStore, default_store_dir,
                                   trace_key)

SCALE = 0.12


@pytest.fixture(scope="module")
def suite_runs():
    return run_suite(scale=SCALE, seed=0)


@pytest.fixture(scope="module")
def store(suite_runs, tmp_path_factory):
    store = TraceStore(tmp_path_factory.mktemp("traces"))
    for name, run in suite_runs.items():
        key = trace_key(name, SCALE, 0, "v-test")
        assert store.put(key, run, code_version="v-test",
                         scale=SCALE, seed=0)
    return store


class TestRoundTripWholeSuite:
    """Every kernel's memmap-loaded entry must be bit-identical to the
    fresh in-memory capture — all columns, both streams, pc labels."""

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_bit_identical(self, name, suite_runs, store):
        run = suite_runs[name]
        stored = store.get(trace_key(name, SCALE, 0, "v-test"))
        assert isinstance(stored, StoredRun)
        for col in _ADD_COLUMNS:
            live, mapped = getattr(run.trace, col), \
                getattr(stored.trace, col)
            assert live.dtype == mapped.dtype, col
            assert np.array_equal(live, mapped), col
        for col in _INST_COLUMNS:
            assert np.array_equal(getattr(run.insts, col),
                                  getattr(stored.insts, col)), col
        assert stored.trace.pc_labels == run.trace.pc_labels
        assert stored.n_static_pcs == run.n_static_pcs
        assert stored.name == run.name
        assert stored.launch == run.launch
        for field in ("global_loads", "global_stores", "shared_loads",
                      "shared_stores", "global_load_transactions",
                      "global_store_transactions", "const_loads"):
            assert getattr(stored.mem, field) \
                == getattr(run.mem, field), field

    def test_entries_are_memmaps(self, store, suite_runs):
        stored = store.get(trace_key("pathfinder", SCALE, 0, "v-test"))
        assert isinstance(stored.trace.op_a, np.memmap)
        assert not stored.trace.op_a.flags.writeable

    def test_evaluation_identical_from_store(self, store, suite_runs):
        """A full end-to-end evaluation from the memmap must match the
        live run bit for bit."""
        from repro.core.predictors import run_speculation
        from repro.core.speculation import ST2_DESIGN
        run = suite_runs["binomial"]
        stored = store.get(trace_key("binomial", SCALE, 0, "v-test"))
        live = run_speculation(run.trace, ST2_DESIGN)
        mapped = run_speculation(stored.trace, ST2_DESIGN)
        assert live.thread_misprediction_rate \
            == mapped.thread_misprediction_rate
        assert np.array_equal(live.mispredicted, mapped.mispredicted)


class TestStoreSemantics:
    def test_keys_distinguish_identity(self):
        base = trace_key("k", 1.0, 0, "v1")
        assert trace_key("k2", 1.0, 0, "v1") != base
        assert trace_key("k", 0.5, 0, "v1") != base
        assert trace_key("k", 1.0, 1, "v1") != base
        assert trace_key("k", 1.0, 0, "v2") != base
        assert trace_key("k", 1.0, 0, "v1") == base

    def test_put_is_idempotent(self, store, suite_runs):
        key = trace_key("binomial", SCALE, 0, "v-test")
        assert not store.put(key, suite_runs["binomial"])
        assert len(store) == len(KERNEL_NAMES)

    def test_missing_key(self, store):
        assert not store.has("0" * 40)
        with pytest.raises(OSError):
            store.get("0" * 40)

    def test_header_contents(self, store):
        header = store.header(trace_key("sgemm", SCALE, 0, "v-test"))
        assert header["kernel"] == "sgemm"
        assert header["code_version"] == "v-test"
        assert header["scale"] == SCALE
        assert header["n_rows"] > 0
        assert set(header["digests"]) \
            == {f"add_{c}" for c in _ADD_COLUMNS} \
            | {f"inst_{c}" for c in _INST_COLUMNS}

    def test_default_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "x"))
        assert default_store_dir() == tmp_path / "x"


class TestGetMemo:
    """The read-side memo: repeated ``get`` of a hot key returns the
    shared handle, with obs emissions identical to a real open so
    grid metrics stay independent of unit→worker scheduling."""

    @pytest.fixture()
    def memo_store(self, suite_runs, tmp_path):
        store = TraceStore(tmp_path / "m")
        for name in ("binomial", "pathfinder", "qrng_K2",
                     "sortNets_K2", "sgemm"):
            store.put(trace_key(name, SCALE, 0, "v-m"),
                      suite_runs[name], code_version="v-m",
                      scale=SCALE, seed=0)
        return store

    def get_with_obs(self, store, key):
        from repro import obs
        with obs.scoped() as reg:
            stored = store.get(key)
        return stored, reg.snapshot()

    def test_hit_returns_shared_handle(self, memo_store):
        key = trace_key("binomial", SCALE, 0, "v-m")
        first = memo_store.get(key)
        assert memo_store.get(key) is first

    def test_hit_emits_identical_obs(self, memo_store):
        key = trace_key("binomial", SCALE, 0, "v-m")
        _, cold = self.get_with_obs(memo_store, key)
        _, warm = self.get_with_obs(memo_store, key)
        assert warm["counters"] == cold["counters"]
        assert warm["counters"]["trace_store.open"] == 1
        assert warm["counters"]["trace_store.bytes_mapped"] > 0
        assert warm["timers"]["trace_store.get"]["count"] \
            == cold["timers"]["trace_store.get"]["count"] == 1

    def test_memo_is_bounded(self, memo_store):
        from repro.sim.trace_store import GET_MEMO_SIZE
        for name in ("binomial", "pathfinder", "qrng_K2",
                     "sortNets_K2", "sgemm"):
            memo_store.get(trace_key(name, SCALE, 0, "v-m"))
        assert len(memo_store._get_memo) == GET_MEMO_SIZE

    def test_remove_invalidates_memo(self, memo_store):
        key = trace_key("qrng_K2", SCALE, 0, "v-m")
        memo_store.get(key)
        memo_store.remove(key)
        assert key not in memo_store._get_memo
        with pytest.raises(OSError):
            memo_store.get(key)


class TestColumnGeometry:
    """Columns map directly via the geometry recorded in the header;
    entries that predate the ``columns`` record fall back to
    ``np.load`` — byte-identically."""

    def test_header_records_geometry(self, store):
        header = store.header(trace_key("sgemm", SCALE, 0, "v-test"))
        columns = header["columns"]
        assert set(columns) == set(header["digests"])
        geo = columns["add_op_a"]
        assert geo["dtype"] == np.dtype(np.uint64).str
        assert geo["shape"][0] == header["n_rows"]
        assert geo["offset"] > 0

    def test_legacy_entry_without_geometry(self, suite_runs,
                                           tmp_path):
        store = TraceStore(tmp_path / "g")
        key = trace_key("binomial", SCALE, 0, "v-g")
        store.put(key, suite_runs["binomial"], code_version="v-g",
                  scale=SCALE, seed=0)
        direct = store.get(key)

        header_path = store.header_path(key)
        header = json.loads(header_path.read_text())
        del header["columns"]
        header_path.write_text(json.dumps(header))
        fallback = TraceStore(tmp_path / "g").get(key)

        run = suite_runs["binomial"]
        for col in _ADD_COLUMNS:
            assert np.array_equal(getattr(fallback.trace, col),
                                  getattr(run.trace, col)), col
            assert np.array_equal(getattr(fallback.trace, col),
                                  getattr(direct.trace, col)), col
        for col in _INST_COLUMNS:
            assert np.array_equal(getattr(fallback.insts, col),
                                  getattr(run.insts, col)), col


def _race_put(root, key, run, scale, barrier, queue):
    """One racing writer (forked): everyone assembles and renames the
    same key at once."""
    store = TraceStore(root)
    barrier.wait()
    try:
        queue.put(("ok", store.put(key, run, code_version="v-race",
                                   scale=scale, seed=0)))
    except Exception as exc:            # pragma: no cover - fail path
        queue.put(("error", repr(exc)))


class TestConcurrentPublication:
    """Two writers racing to publish the same key must both succeed:
    exactly one creates the entry, the loser discards its identical
    copy, and nobody ever raises or corrupts the store."""

    def test_loser_path_is_deterministic(self, suite_runs, tmp_path,
                                         monkeypatch):
        """Force the exact interleaving: the loser passes the ``has``
        pre-check, fully assembles its copy, and only then finds the
        winner's entry blocking its rename."""
        store = TraceStore(tmp_path / "race")
        run = suite_runs["binomial"]
        key = trace_key("binomial", SCALE, 0, "v-race")
        assert store.put(key, run, code_version="v-race",
                         scale=SCALE, seed=0)

        pre_checks = []

        def blind_has(k):
            # the winner publishes between the loser's pre-check and
            # its rename — model that by blinding the first call only
            pre_checks.append(k)
            return False if len(pre_checks) == 1 else \
                TraceStore.has(store, k)

        monkeypatch.setattr(store, "has", blind_has)
        assert store.put(key, run, code_version="v-race",
                         scale=SCALE, seed=0) is False
        assert store.verify(key) == []
        assert not list(  # the loser's workspace is cleaned up
            c for c in (tmp_path / "race").iterdir()
            if c.name.startswith("."))

    def test_debris_without_header_raises(self, suite_runs, tmp_path,
                                          monkeypatch):
        """A blocking directory that is *not* a published entry (no
        header) must surface, never masquerade as a cache hit."""
        store = TraceStore(tmp_path / "debris")
        run = suite_runs["binomial"]
        key = trace_key("binomial", SCALE, 0, "v-d")
        debris = store.path(key)
        debris.mkdir(parents=True)
        (debris / "leftover.npy").write_bytes(b"junk")
        with pytest.raises(RuntimeError, match="readable header"):
            store.put(key, run, code_version="v-d", scale=SCALE,
                      seed=0)

    def test_multiprocess_race_single_creator(self, suite_runs,
                                              tmp_path):
        """The real thing: four forked writers, one barrier, one key.
        All succeed, exactly one created the entry, and the published
        entry passes a full integrity check."""
        ctx = multiprocessing.get_context("fork")
        run = suite_runs["qrng_K2"]
        key = trace_key("qrng_K2", SCALE, 0, "v-race")
        barrier = ctx.Barrier(4)
        queue = ctx.Queue()
        procs = [ctx.Process(target=_race_put,
                             args=(tmp_path / "mp", key, run, SCALE,
                                   barrier, queue))
                 for _ in range(4)]
        for proc in procs:
            proc.start()
        outcomes = [queue.get(timeout=60) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
        assert all(status == "ok" for status, _ in outcomes), outcomes
        assert sum(created for _, created in outcomes) == 1
        store = TraceStore(tmp_path / "mp")
        assert store.keys() == [key]
        assert store.verify(key) == []


class TestOrphanSweep:
    """Crashed writers leak dot-prefixed publication workspaces that
    ``keys()`` never reports; ``gc()`` must sweep the old ones and
    leave live writers' fresh workspaces alone."""

    def test_gc_sweeps_old_orphans_only(self, suite_runs, tmp_path):
        store = TraceStore(tmp_path / "o")
        key = trace_key("binomial", SCALE, 0, "v-o")
        store.put(key, suite_runs["binomial"], code_version="v-o",
                  scale=SCALE, seed=0)
        old = store.root / ".deadbeef-orphan"
        old.mkdir()
        (old / "partial.npy").write_bytes(b"x")
        os.utime(old, (1, 1))
        fresh = store.root / ".cafef00d-live"
        fresh.mkdir()

        removed = store.gc(current_version="v-o")
        assert removed == [old.name]
        assert not old.exists()
        assert fresh.is_dir()           # a live writer owns this
        assert store.keys() == [key]
        assert store.verify(key) == []

    def test_orphans_invisible_to_keys(self, tmp_path):
        store = TraceStore(tmp_path / "o2")
        store.root.mkdir(parents=True)
        orphan = store.root / ".aaaa-x"
        orphan.mkdir()
        os.utime(orphan, (1, 1))
        assert store.keys() == []
        assert store.orphan_tmp_dirs() == [orphan.name]
        assert store.orphan_tmp_dirs(min_age_s=10**12) == []


class TestVerifyAndGc:
    @pytest.fixture()
    def small_store(self, suite_runs, tmp_path):
        store = TraceStore(tmp_path / "s")
        for name in ("binomial", "pathfinder", "qrng_K2"):
            store.put(trace_key(name, SCALE, 0, "v-old"),
                      suite_runs[name], code_version="v-old",
                      scale=SCALE, seed=0)
        return store

    def test_verify_sound(self, small_store):
        for key in small_store.keys():
            assert small_store.verify(key) == []

    def test_verify_detects_bitflip(self, small_store):
        key = small_store.keys()[0]
        path = small_store.path(key) / "add_op_a.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert any("sha256 mismatch" in p
                   for p in small_store.verify(key))

    def test_verify_detects_truncation(self, small_store):
        key = small_store.keys()[0]
        header_path = small_store.header_path(key)
        header = json.loads(header_path.read_text())
        header["n_rows"] += 7
        header_path.write_text(json.dumps(header))
        assert any("rows" in p for p in small_store.verify(key))

    def test_gc_stale_versions(self, small_store, suite_runs):
        fresh = trace_key("binomial", SCALE, 0, "v-new")
        small_store.put(fresh, suite_runs["binomial"],
                        code_version="v-new", scale=SCALE, seed=0)
        removed = small_store.gc(current_version="v-new")
        assert len(removed) == 3
        assert small_store.keys() == [fresh]

    def test_gc_byte_budget_evicts_oldest(self, small_store):
        import os
        keys = small_store.keys()
        # age the first entry far into the past
        oldest = keys[0]
        os.utime(small_store.header_path(oldest), (1, 1))
        budget = sum(small_store.nbytes(k) for k in keys) \
            - small_store.nbytes(oldest)
        removed = small_store.gc(max_bytes=budget)
        assert removed == [oldest]

    def test_gc_dry_run_removes_nothing(self, small_store):
        removed = small_store.gc(current_version="other", dry_run=True)
        assert len(removed) == 3
        assert len(small_store) == 3
