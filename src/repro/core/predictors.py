"""Carry-speculation mechanisms (the paper's Section IV-B design space).

A :class:`SpeculationConfig` names one point in the design space:

* ``mechanism`` — how the *dynamic* prediction is produced:
  ``static0`` / ``static1`` (always 0 / 1), ``operand`` (CASA-style
  stateless prediction from the operands), ``valhalla`` (a single
  history bit per adder broadcast to every slice — our reconstruction of
  the VaLHALLA GLSVLSI'17 predictor) or ``prev`` (the paper's
  per-slice previous-carry history table).
* ``peek`` — overlay the Peek rule: when the MSbs of both operands of
  the previous slice agree, the carry-in is statically known and no
  dynamic speculation is used (Section IV-B).
* ``pc_index`` / ``pc_bits`` — how the PC participates in the history
  index: ``none`` (all instructions alias), ``full``, ``mod`` (lowest k
  bits — ModPCk) or ``xor`` (XOR-hash of k-bit PC chunks).
* ``thread_key`` — history sharing across threads: ``None`` (all threads
  share), ``"gtid"`` (fully private per thread) or ``"ltid"`` (shared
  across warps by lane — the ST2 choice).
* ``sm_scoped`` — scope tables per SM (the physical CRF is per-SM).

Predictions are computed over an entire :class:`~repro.sim.trace.AddTrace`
at once.  The history-table semantics ("the prediction for an operation
is the carry vector stored by the most recent earlier operation with the
same index") vectorises into a grouped shift along the trace's logical
time order; a dict-based sequential reference implementation lives in
:mod:`repro.core.history` and the two are cross-checked in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro import obs
from repro.core import bitops
from repro.core.adder import ST2Adder
from repro.core.slices import geometry_for

MAX_PREDICTIONS = 7  # the widest adder (64-bit) has 8 slices

_U64 = np.uint64


@dataclass(frozen=True)
class SpeculationConfig:
    """One point in the carry-speculation design space."""

    name: str
    mechanism: str = "prev"         # static0|static1|operand|valhalla|prev
    peek: bool = False
    pc_index: str = "none"          # none|full|mod|xor
    pc_bits: int = 0
    thread_key: str = ""            # ""|gtid|ltid
    sm_scoped: bool = False

    def __post_init__(self) -> None:
        if self.mechanism not in ("static0", "static1", "operand",
                                  "valhalla", "prev"):
            raise ValueError(f"unknown mechanism {self.mechanism!r}")
        if self.pc_index not in ("none", "full", "mod", "xor"):
            raise ValueError(f"unknown pc_index {self.pc_index!r}")
        if self.pc_index in ("mod", "xor") and self.pc_bits < 1:
            raise ValueError("mod/xor PC indexing needs pc_bits >= 1")
        if self.thread_key not in ("", "gtid", "ltid"):
            raise ValueError(f"unknown thread_key {self.thread_key!r}")

    def table_entries(self, max_threads: int = 2048) -> int:
        """History-table entry count implied by the index (for sizing)."""
        pc_entries = {"none": 1, "full": 1 << 16}.get(
            self.pc_index, 1 << self.pc_bits)
        thread_entries = {"": 1, "gtid": max_threads, "ltid": 32}[
            self.thread_key]
        return pc_entries * thread_entries


# ----------------------------------------------------------------------
# trace-level derived quantities
# ----------------------------------------------------------------------

def trace_n_predictions(trace) -> np.ndarray:
    """Per-row number of speculated carries (slices - 1)."""
    return (trace.width.astype(np.int64) + 7) // 8 - 1


def trace_slice_carries(trace) -> np.ndarray:
    """True carry-in of every slice, padded to 8 columns."""
    n = len(trace)
    out = np.zeros((n, MAX_PREDICTIONS + 1), dtype=np.uint8)
    for w in np.unique(trace.width):
        rows = np.nonzero(trace.width == w)[0]
        carries = bitops.slice_carry_ins(
            trace.op_a[rows], trace.op_b[rows], int(w), 8, trace.cin[rows])
        out[rows[:, None], np.arange(carries.shape[1])[None, :]] = carries
    return out


def trace_peek(trace) -> tuple:
    """Peek rule over the whole trace.

    Returns ``(known, value)`` of shape ``(N, 7)``: ``known[r, j]`` is
    True when the carry into slice ``j+1`` is statically determined by
    the MSbs of slice ``j`` of both operands (both zero → 0, both one →
    1), and ``value`` holds that static carry.
    """
    n = len(trace)
    known = np.zeros((n, MAX_PREDICTIONS), dtype=bool)
    value = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
    for w in np.unique(trace.width):
        rows = np.nonzero(trace.width == w)[0]
        msb_a = bitops.slice_operand_bits(trace.op_a[rows], int(w), 8)
        msb_b = bitops.slice_operand_bits(trace.op_b[rows], int(w), 8)
        n_pred = msb_a.shape[1] - 1
        if n_pred <= 0:
            continue
        both_one = (msb_a[:, :n_pred] & msb_b[:, :n_pred]) == 1
        both_zero = (msb_a[:, :n_pred] | msb_b[:, :n_pred]) == 0
        known[rows[:, None], np.arange(n_pred)[None, :]] = \
            both_one | both_zero
        value[rows[:, None], np.arange(n_pred)[None, :]] = \
            both_one.astype(np.uint8)
    return known, value


def previous_same_key(keys: np.ndarray, valid: np.ndarray,
                      groups: np.ndarray = None) -> np.ndarray:
    """Index of the previous valid row with the same key (or -1).

    ``keys`` must be one int64 per row; rows are in logical-time order.
    This is the vectorised core of every history-table mechanism.

    ``groups`` (optional) marks rows that execute *simultaneously* (the
    lanes of one warp instruction): a row never takes its prediction
    from another row of the same group, because in hardware every lane
    reads the history entry in the register-read stage, before any lane
    of that instruction has written back.  Rows of one group sharing a
    key all see the last write from *before* the group.
    """
    n = len(keys)
    prev = np.full(n, -1, dtype=np.int64)
    idx = np.nonzero(np.asarray(valid, dtype=bool))[0]
    if len(idx) < 2:
        return prev
    k = keys[idx]
    order = np.argsort(k, kind="stable")
    si = idx[order]
    sk = k[order]
    if groups is None:
        same = sk[1:] == sk[:-1]
        prev[si[1:][same]] = si[:-1][same]
        return prev
    sg = groups[idx][order]
    m = len(si)
    pos = np.arange(m)
    # start of each (key, group) run; runs are contiguous because rows
    # of one group are consecutive in time, hence in the stable sort
    run_start = np.ones(m, dtype=bool)
    run_start[1:] = (sk[1:] != sk[:-1]) | (sg[1:] != sg[:-1])
    start_pos = np.maximum.accumulate(np.where(run_start, pos, 0))
    source = start_pos - 1
    ok = (source >= 0) & (sk[np.maximum(source, 0)] == sk)
    prev[si[ok]] = si[source[ok]]
    return prev


def trace_groups(trace) -> np.ndarray:
    """Simultaneity groups: one id per dynamic warp instruction."""
    return (trace.seq.astype(np.int64) << 24) + trace.warp.astype(np.int64)


def _xor_fold(pc: np.ndarray, bits: int) -> np.ndarray:
    """XOR-hash of ``bits``-wide PC chunks (the paper's 'more complex
    PC-based indexing', shown to provide no additional benefit)."""
    folded = np.zeros(len(pc), dtype=np.int64)
    v = pc.astype(np.int64).copy()
    m = (1 << bits) - 1
    while np.any(v):
        folded ^= v & m
        v >>= bits
    return folded


def history_keys(trace, config: SpeculationConfig) -> np.ndarray:
    """Combined history-table index per trace row."""
    pc = trace.pc.astype(np.int64)
    if config.pc_index == "none":
        pc_part = np.zeros(len(trace), dtype=np.int64)
    elif config.pc_index == "full":
        pc_part = pc
    elif config.pc_index == "mod":
        pc_part = pc & ((1 << config.pc_bits) - 1)
    else:  # xor
        pc_part = _xor_fold(pc, config.pc_bits)
    if config.thread_key == "gtid":
        thread_part = trace.gtid.astype(np.int64)
    elif config.thread_key == "ltid":
        thread_part = trace.ltid.astype(np.int64)
    else:
        thread_part = np.zeros(len(trace), dtype=np.int64)
    sm_part = (trace.sm.astype(np.int64) if config.sm_scoped
               else np.zeros(len(trace), dtype=np.int64))
    return pc_part + (thread_part << 24) + (sm_part << 56)


# ----------------------------------------------------------------------
# prediction
# ----------------------------------------------------------------------

def _operand_predictions(trace) -> np.ndarray:
    """CASA-style stateless prediction: the *generate* bit of the MSB
    of the previous slice (carry assumed to come only from local
    generation, never long propagation)."""
    n = len(trace)
    preds = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
    for w in np.unique(trace.width):
        rows = np.nonzero(trace.width == w)[0]
        msb_a = bitops.slice_operand_bits(trace.op_a[rows], int(w), 8)
        msb_b = bitops.slice_operand_bits(trace.op_b[rows], int(w), 8)
        n_pred = msb_a.shape[1] - 1
        if n_pred <= 0:
            continue
        preds[rows[:, None], np.arange(n_pred)[None, :]] = \
            msb_a[:, :n_pred] & msb_b[:, :n_pred]
    return preds


def _valhalla_predictions(trace, carries: np.ndarray,
                          n_preds: np.ndarray) -> np.ndarray:
    """Single history bit per adder, broadcast to every slice.

    Our VaLHALLA reconstruction: each (hardware) adder — identified by
    the thread it serves — remembers whether the previous operation's
    carry chain was carry-heavy (majority of slice boundaries saw a
    carry) and broadcasts that single bit as the prediction for *all*
    slices of the next operation.
    """
    keys = trace.gtid.astype(np.int64)
    prev = previous_same_key(keys, np.ones(len(trace), dtype=bool))
    carry_sum = np.zeros(len(trace), dtype=np.int64)
    for j in range(MAX_PREDICTIONS):
        carry_sum += carries[:, j + 1] * (n_preds > j)
    broadcast = np.zeros(len(trace), dtype=np.uint8)
    has = prev >= 0
    prev_sum = carry_sum[prev[has]]
    prev_n = np.maximum(n_preds[prev[has]], 1)
    broadcast[has] = (2 * prev_sum > prev_n).astype(np.uint8)
    return np.repeat(broadcast[:, None], MAX_PREDICTIONS, axis=1)


def _prev_predictions(trace, carries: np.ndarray, n_preds: np.ndarray,
                      config: SpeculationConfig) -> tuple:
    """History-table predictions and per-bit has-predecessor mask."""
    keys = history_keys(trace, config)
    groups = trace_groups(trace)
    n = len(trace)
    preds = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
    has_prev = np.zeros((n, MAX_PREDICTIONS), dtype=bool)
    for j in range(MAX_PREDICTIONS):
        valid = n_preds > j
        if not valid.any():
            continue
        prev = previous_same_key(keys, valid, groups)
        rows = prev >= 0
        preds[rows, j] = carries[prev[rows], j + 1]
        has_prev[:, j] = rows
    return preds, has_prev


@dataclass
class Prediction:
    """Predictions for a whole trace, padded to 7 columns."""

    config: SpeculationConfig
    bits: np.ndarray            # (N, 7) uint8
    has_prev: np.ndarray        # (N, 7) bool — history hit (prev mechanisms)
    peek_known: np.ndarray      # (N, 7) bool — statically determined bits
    # (N, 7) bool — compile-time facts; None for purely dynamic configs
    static_known: Optional[np.ndarray] = None


def predict_trace(trace, config: SpeculationConfig,
                  carries: np.ndarray = None) -> Prediction:
    """Compute every carry prediction the mechanism would make."""
    n = len(trace)
    n_preds = trace_n_predictions(trace)
    with obs.timer("core.predict"):
        if carries is None:
            carries = trace_slice_carries(trace)
        has_prev = np.zeros((n, MAX_PREDICTIONS), dtype=bool)

        if config.mechanism == "static0":
            bits = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
        elif config.mechanism == "static1":
            bits = np.ones((n, MAX_PREDICTIONS), dtype=np.uint8)
        elif config.mechanism == "operand":
            bits = _operand_predictions(trace)
        elif config.mechanism == "valhalla":
            bits = _valhalla_predictions(trace, carries, n_preds)
        else:  # prev
            bits, has_prev = _prev_predictions(trace, carries, n_preds,
                                               config)

        peek_known = np.zeros((n, MAX_PREDICTIONS), dtype=bool)
        if config.peek:
            peek_known, peek_value = trace_peek(trace)
            bits = np.where(peek_known, peek_value, bits)
    obs.add("core.predict.ops", n)
    obs.add("core.predict.history_lookups",
            int((np.arange(MAX_PREDICTIONS)[None, :]
                 < n_preds[:, None]).sum()))
    obs.add("core.predict.history_hits", int(has_prev.sum()))
    obs.add("core.predict.peek_static", int(peek_known.sum()))
    return Prediction(config=config, bits=bits, has_prev=has_prev,
                      peek_known=peek_known)


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------

@dataclass
class SpeculationResult:
    """Outcome of running ST2 adders over a trace with a mechanism."""

    config: SpeculationConfig
    n_ops: int
    mispredicted: np.ndarray        # (N,) bool — op needed a 2nd cycle
    recomputed: np.ndarray          # (N,) int — suspect slices recomputed
    wrong_bits: np.ndarray          # (N,) int — raw prediction errors

    @property
    def thread_misprediction_rate(self) -> float:
        """The paper's Figures 5/6 metric."""
        return float(self.mispredicted.mean()) if self.n_ops else 0.0

    @property
    def recomputed_per_misprediction(self) -> float:
        """Average slices recomputed per mispredicted operation
        (the paper reports 1.94 on average, up to 2.73)."""
        n_miss = int(self.mispredicted.sum())
        if not n_miss:
            return 0.0
        return float(self.recomputed.sum() / n_miss)

    @property
    def extra_cycle_fraction(self) -> float:
        return self.thread_misprediction_rate


def evaluate_trace(trace, prediction: Prediction) -> SpeculationResult:
    """Run the ST2 adder over the trace with the given predictions."""
    n = len(trace)
    mispredicted = np.zeros(n, dtype=bool)
    recomputed = np.zeros(n, dtype=np.int64)
    wrong_bits = np.zeros(n, dtype=np.int64)
    with obs.timer("core.evaluate"):
        for w in np.unique(trace.width):
            rows = np.nonzero(trace.width == w)[0]
            geo = geometry_for(int(w))
            if geo.n_predictions == 0:
                continue
            adder = ST2Adder(geo)
            out = adder.add(trace.op_a[rows], trace.op_b[rows],
                            prediction.bits[rows, :geo.n_predictions],
                            cin=trace.cin[rows])
            mispredicted[rows] = out.mispredicted
            recomputed[rows] = out.recomputed_slices
            truth = out.slice_carries[:, 1:]
            wrong_bits[rows] = (
                prediction.bits[rows, :geo.n_predictions]
                != truth).sum(axis=1)
    obs.add("core.adder.ops", n)
    obs.add("core.adder.mispredicts", int(mispredicted.sum()))
    obs.add("core.adder.recomputed_slices", int(recomputed.sum()))
    obs.add("core.adder.wrong_bits", int(wrong_bits.sum()))
    return SpeculationResult(config=prediction.config, n_ops=n,
                             mispredicted=mispredicted,
                             recomputed=recomputed, wrong_bits=wrong_bits)


def run_speculation(trace, config: SpeculationConfig) -> SpeculationResult:
    """Predict + evaluate in one call."""
    return evaluate_trace(trace, predict_trace(trace, config))


# ----------------------------------------------------------------------
# static carry facts (compile-time Peek)
# ----------------------------------------------------------------------

def _fact_fields(fact) -> tuple:
    """``(width, {boundary: carry})`` from a fact-table entry.

    Accepts both :class:`repro.lint.facts.CarryFact` objects and the
    plain dicts of a ``st2-lint facts --json`` export (whose carries
    keys are strings).
    """
    if isinstance(fact, dict):
        width = int(fact["width"])
        carries = {int(j): int(c) for j, c in fact["carries"].items()}
    else:
        width = int(fact.width)
        carries = {int(j): int(c) for j, c in fact.carries.items()}
    return width, carries


def trace_static_peek(trace, facts) -> tuple:
    """Compile-time carry facts over the whole trace.

    ``facts`` maps PC labels (``function:line[#tag]``, the identity
    :class:`repro.isa.pc.PcTable` stores) to proven slice-boundary
    carries — the output of ``st2-lint facts`` /
    :func:`repro.lint.facts.facts_for_kernel`.  Returns ``(known,
    value)`` of shape ``(N, 7)`` in the same convention as
    :func:`trace_peek`: ``known[r, j]`` means the carry into slice
    ``j+1`` of row ``r`` is statically proven to be ``value[r, j]``.

    Rows match a fact only on exact label *and* width: labels are not
    unique across op classes (an FP add can share a source line with
    an integer add), so the width check keeps facts from leaking onto
    rows they were not proven for.
    """
    n = len(trace)
    known = np.zeros((n, MAX_PREDICTIONS), dtype=bool)
    value = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
    labels = getattr(trace, "pc_labels", None)
    if not labels or not facts:
        return known, value
    pc = trace.pc.astype(np.int64)
    width = trace.width.astype(np.int64)
    for pc_id, label in enumerate(labels):
        fact = facts.get(label)
        if fact is None:
            continue
        f_width, carries = _fact_fields(fact)
        rows = (pc == pc_id) & (width == f_width)
        if not rows.any():
            continue
        for j, c in carries.items():
            if 0 <= j < MAX_PREDICTIONS:
                known[rows, j] = True
                value[rows, j] = c
    return known, value


def predict_trace_static(trace, config: SpeculationConfig, facts,
                         carries: np.ndarray = None) -> Prediction:
    """Dynamic prediction with the static fact table overlaid.

    Statically proven carries replace the dynamic prediction bits
    (they equal the true carries, so replacing can only turn wrong
    predictions right — functional results are bit-identical and the
    misprediction rate never increases) and are marked in
    ``static_known`` so those slices need no dynamic speculation.
    """
    pred = predict_trace(trace, config, carries)
    static_known, static_value = trace_static_peek(trace, facts)
    bits = np.where(static_known, static_value, pred.bits)
    obs.add("predictor.static_peek_hits", int(static_known.sum()))
    return Prediction(config=pred.config, bits=bits,
                      has_prev=pred.has_prev,
                      peek_known=pred.peek_known,
                      static_known=static_known)


class StaticPeekPredictor:
    """Predictor that consults a static carry-fact table first.

    Wraps a :class:`SpeculationConfig`: slice carries pinned by the
    fact table (per-PC proofs from ``st2-lint facts``) are used
    directly; every other slice falls back to the dynamic mechanism
    (Peek overlay and/or Prev history) of the wrapped config.
    """

    def __init__(self, config: SpeculationConfig, facts):
        self.config = config
        self.facts = dict(facts) if facts else {}

    def predict(self, trace, carries: np.ndarray = None) -> Prediction:
        return predict_trace_static(trace, self.config, self.facts,
                                    carries)

    def run(self, trace) -> SpeculationResult:
        """Predict + evaluate in one call (static-fact analogue of
        :func:`run_speculation`)."""
        return evaluate_trace(trace, self.predict(trace))


def speculation_events(prediction: Prediction, trace) -> int:
    """Slice boundaries that need a *dynamic* speculation event.

    A (row, slice) pair consumes a dynamic prediction unless its carry
    was resolved statically — by runtime Peek or by a compile-time
    fact.  This is the quantity the static-peek ablation drives down.
    """
    n_preds = trace_n_predictions(trace)
    valid = (np.arange(MAX_PREDICTIONS)[None, :] < n_preds[:, None])
    resolved = prediction.peek_known.copy()
    if prediction.static_known is not None:
        resolved |= prediction.static_known
    return int((valid & ~resolved).sum())


def carry_match_rate(trace, config: SpeculationConfig) -> float:
    """Figure 3 metric: fraction of slice carry-ins matching the
    predecessor's, over (row, slice) pairs that have a predecessor."""
    carries = trace_slice_carries(trace)
    n_preds = trace_n_predictions(trace)
    bits, has_prev = _prev_predictions(trace, carries, n_preds,
                                       replace(config, mechanism="prev"))
    valid = has_prev & (np.arange(MAX_PREDICTIONS)[None, :]
                        < n_preds[:, None])
    if not valid.any():
        return float("nan")   # no (op, slice) pair has a predecessor
    truth = carries[:, 1:]
    return float((bits == truth)[valid].mean())
