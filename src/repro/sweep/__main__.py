"""``python -m repro.sweep`` — the ``st2-sweep`` CLI."""

import sys

from repro.sweep.cli import console_main

sys.exit(console_main())
