#!/usr/bin/env python
"""Related-work study: what would an *approximate* speculative adder do
to a real workload, and what does ST2's guaranteed correctness cost?

The paper's Section VII contrast, made concrete: run pathfinder's
dynamic-programming additions through an ACA-style approximate adder
(silent errors on long carry chains), VLSA (correct, stalls on long
chains) and ST2 (correct, stalls only on history mispredictions) — then
look at what the errors would do to the kernel's actual output.

Run:  python examples/approximate_vs_exact.py
"""

import numpy as np

from repro.analysis.ascii_charts import table
from repro.core.approximate import (AccuracyConfigurableAdder,
                                    compare_on_stream)
from repro.core.predictors import run_speculation
from repro.core.slices import INT32
from repro.core.speculation import ST2_DESIGN
from repro.kernels import pathfinder


def main() -> None:
    run = pathfinder.prepare(scale=1.0, seed=0).run()
    t32 = run.trace.select(run.trace.width == 32)
    print(f"pathfinder: {len(t32):,} 32-bit integer additions\n")

    # -- the three designs on the same operand stream ----------------------
    rows = []
    for window in (4, 8, 16):
        stats = compare_on_stream(t32.op_a, t32.op_b, 32, window)
        rows.append((f"window {window}",
                     f"{stats['aca_error_rate']:.1%}",
                     f"{stats['aca_mean_relative_error']:.2e}",
                     f"{stats['vlsa_misprediction_rate']:.1%}"))
    print(table("ACA (approximate) and VLSA (correct, stalls)",
                ["design point", "ACA silent-error rate",
                 "ACA mean rel. error", "VLSA stall rate"], rows))

    st2 = run_speculation(t32, ST2_DESIGN)
    print(f"\nST2 (correct, history-based): "
          f"{st2.thread_misprediction_rate:.1%} stall rate — "
          "fewer stalls than VLSA at window 8,\nand zero wrong results "
          "by construction.")

    # -- what approximate errors do to the DP output ------------------------
    aca = AccuracyConfigurableAdder(INT32, window=8).add(
        t32.op_a, t32.op_b, 0)
    wrong = aca.erroneous
    if wrong.any():
        worst = np.argmax(aca.error_magnitude)
        print(f"\nexample silent corruption: "
              f"{int(t32.op_a[worst])} + {int(t32.op_b[worst])} -> "
              f"{int(aca.result[worst])} (true {int(aca.exact[worst])})")
        print("in a dynamic-programming kernel such errors cascade: "
              "every later row\nbuilds on the corrupted path cost — "
              "which is why the paper insists on\nvariable-latency "
              "correction instead of approximation.")


if __name__ == "__main__":
    main()
