"""metrics.json I/O, metric refs, diffs and baseline checks."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import Obs
from repro.obs.metrics import (baseline_from_metrics, check_baseline,
                               diff_metrics, flatten_metrics,
                               load_baseline, lookup_metric,
                               metrics_path_for, read_metrics,
                               write_metrics)


@pytest.fixture
def snapshot():
    reg = Obs()
    reg.add("sim.functional.trace_rows", 100)
    reg.add("core.predict.ops", 40)
    reg.record_timer("runner.stage.eval", 2.0)
    reg.record_timer("core.predict", 0.5)
    return reg.snapshot()


class TestPathMapping:
    def test_manifest_to_metrics(self):
        assert metrics_path_for("out/st2_manifest.jsonl") \
            == Path("out/st2_manifest.metrics.json")

    def test_idempotent_on_metrics_path(self):
        p = Path("run.metrics.json")
        assert metrics_path_for(p) == p


class TestRoundTrip:
    def test_write_read(self, tmp_path, snapshot):
        meta = {"kernels": ["qrng_K2"], "workers": 2}
        path = write_metrics(tmp_path / "m.metrics.json", snapshot,
                             meta=meta)
        back = read_metrics(path)
        assert back["meta"] == meta
        assert back["counters"] == snapshot["counters"]
        assert back["timers"] == snapshot["timers"]

    def test_creates_parent_dirs(self, tmp_path, snapshot):
        path = write_metrics(tmp_path / "a" / "b" / "m.json", snapshot)
        assert path.is_file()

    def test_version_check(self, tmp_path):
        bad = tmp_path / "old.json"
        bad.write_text(json.dumps({"metrics_version": 99}))
        with pytest.raises(ValueError, match="version"):
            read_metrics(bad)


class TestMetricRefs:
    def test_flatten(self, snapshot):
        flat = flatten_metrics(snapshot)
        assert flat["counters.core.predict.ops"] == 40
        assert flat["timers.core.predict.count"] == 1
        assert flat["timers.runner.stage.eval.total_s"] \
            == pytest.approx(2.0)
        assert list(flat) == sorted(flat)

    def test_lookup(self, snapshot):
        assert lookup_metric(snapshot, "counters.core.predict.ops") == 40
        assert lookup_metric(snapshot, "timers.core.predict.mean_s") \
            == pytest.approx(0.5)

    @pytest.mark.parametrize("ref", [
        "counters.nope", "timers.core.predict.widgets",
        "timers.nope.count", "bogus", "bogus.thing"])
    def test_lookup_misses_raise_keyerror(self, snapshot, ref):
        with pytest.raises(KeyError):
            lookup_metric(snapshot, ref)


class TestDiff:
    def test_aligned_rows(self, snapshot):
        other = Obs()
        other.add("core.predict.ops", 50)
        other.add("new.counter", 1)
        rows = {r["metric"]: r
                for r in diff_metrics(snapshot, other.snapshot())}
        changed = rows["counters.core.predict.ops"]
        assert (changed["old"], changed["new"]) == (40, 50)
        assert changed["delta"] == 10
        assert changed["rel"] == pytest.approx(0.25)
        one_sided = rows["counters.new.counter"]
        assert one_sided["old"] is None and one_sided["delta"] is None

    def test_identical_files_all_zero(self, snapshot):
        assert all(r["delta"] == 0
                   for r in diff_metrics(snapshot, snapshot))


class TestBaseline:
    def test_generate_check_round_trip(self, tmp_path, snapshot):
        """A baseline seeded from a run must accept that same run."""
        baseline = baseline_from_metrics(snapshot, rel_tol=0.05)
        assert check_baseline(snapshot, baseline) == []

    def test_counter_drift_out_of_band(self, snapshot):
        baseline = baseline_from_metrics(snapshot, rel_tol=0.05)
        drifted = Obs()
        drifted.add("sim.functional.trace_rows", 120)   # +20% > 5%
        drifted.add("core.predict.ops", 40)
        problems = check_baseline(drifted.snapshot(), baseline)
        assert any("trace_rows" in p for p in problems)

    def test_missing_metric_reported(self, snapshot):
        baseline = {"bench_version": 1, "metrics": [
            {"metric": "counters.not.there", "value": 1}]}
        problems = check_baseline(snapshot, baseline)
        assert problems == ["counters.not.there: missing from metrics"]

    def test_max_min_bounds(self, snapshot):
        baseline = {"bench_version": 1, "metrics": [
            {"metric": "timers.runner.stage.eval.total_s", "max": 1.0},
            {"metric": "counters.core.predict.ops", "min": 100}]}
        problems = check_baseline(snapshot, baseline)
        assert len(problems) == 2

    def test_only_runner_timers_pinned(self, snapshot):
        baseline = baseline_from_metrics(snapshot)
        refs = [e["metric"] for e in baseline["metrics"]]
        assert "timers.runner.stage.eval.total_s" in refs
        assert not any(r.startswith("timers.core") for r in refs)

    def test_load_rejects_bad_shapes(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"bench_version": 99, "metrics": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)
        path.write_text(json.dumps({"bench_version": 1}))
        with pytest.raises(ValueError, match="metrics"):
            load_baseline(path)
        path.write_text(json.dumps({"bench_version": 1,
                                    "metrics": [{"value": 3}]}))
        with pytest.raises(ValueError, match="metric"):
            load_baseline(path)
