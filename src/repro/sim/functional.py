"""Functional execution of DSL kernels → dynamic traces.

This is the stand-in for GPGPU-Sim's PTX functional simulation: it runs
every thread block of a launch (vectorised over the block's threads),
collects the adder-operation trace and the warp-level instruction
stream, and interleaves blocks into a global logical-time order that
approximates their concurrent execution across SMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.isa.pc import PcTable
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.dsl import BlockContext
from repro.sim.memory import Allocator, DeviceBuffer, MemoryStats
from repro.sim.sanitizer import KernelSanitizer, env_sanitize_default
from repro.sim.trace import AddTrace, InstStream, TraceBuilder


@dataclass
class KernelRun:
    """Everything captured from one functional kernel execution."""

    name: str
    launch: LaunchConfig
    trace: AddTrace
    insts: InstStream
    pc_table: PcTable
    mem: MemoryStats
    gpu: GPUConfig
    buffers: dict = field(default_factory=dict)
    sanitizer: object = None

    @property
    def n_warps(self) -> int:
        return self.launch.total_threads // self.gpu.warp_size

    @property
    def n_static_pcs(self) -> int:
        return len(self.pc_table)

    def adds_per_thread_instruction(self) -> float:
        """Fraction of dynamic thread instructions that are adder ops."""
        total = self.insts.thread_instructions()
        return len(self.trace) / total if total else 0.0


class GridLauncher:
    """Builds buffers and runs a kernel function over a grid of blocks.

    ``record_streams`` retains per-access sector-address batches so the
    L2 cache model (:mod:`repro.sim.cache`) can replay the kernel's
    memory behaviour (costs memory; off by default).

    ``sanitize`` enables the runtime sanitizer
    (:mod:`repro.sim.sanitizer`): shared-memory race detection and the
    untraced-arithmetic probe.  ``None`` (the default) defers to the
    ``ST2_SANITIZE`` environment variable, so whole test runs can be
    sanitized without touching call sites.
    """

    def __init__(self, gpu: GPUConfig = TITAN_V, seed: int = 0,
                 record_streams: bool = False, sanitize: bool = None):
        self.gpu = gpu
        self.rng = np.random.default_rng(seed)
        self.alloc = Allocator()
        self.buffers: dict = {}
        self.record_streams = record_streams
        self.sanitize = env_sanitize_default() if sanitize is None \
            else sanitize

    def buffer(self, name: str, data: np.ndarray) -> DeviceBuffer:
        """Allocate and register a named device buffer."""
        buf = self.alloc.alloc(name, np.ascontiguousarray(data))
        self.buffers[name] = buf
        return buf

    def run(self, kernel_fn, launch: LaunchConfig, name: str = "",
            **params) -> KernelRun:
        """Execute ``kernel_fn(k, **params)`` once per block of the grid."""
        builder = TraceBuilder()
        pcs = PcTable()
        mem = MemoryStats(record_streams=self.record_streams)
        san = KernelSanitizer(name or kernel_fn.__name__) \
            if self.sanitize else None
        with obs.timer("sim.functional.run"):
            for block_id in range(launch.grid_blocks):
                sm = block_id % self.gpu.n_sms
                if san is not None:
                    san.begin_block(block_id)
                ctx = BlockContext(launch, block_id, sm, builder, pcs,
                                   self.gpu, mem, sanitizer=san)
                kernel_fn(ctx, **params)
            if san is not None:
                san.finish()
            builder.pc_labels = pcs.labels
            trace, insts = builder.build()
        obs.add("sim.functional.blocks", launch.grid_blocks)
        obs.add("sim.functional.threads", launch.total_threads)
        obs.add("sim.functional.trace_rows", int(len(trace)))
        obs.add("sim.functional.warp_insts", int(len(insts)))
        return KernelRun(name=name or kernel_fn.__name__, launch=launch,
                         trace=trace, insts=insts, pc_table=pcs, mem=mem,
                         gpu=self.gpu, buffers=dict(self.buffers),
                         sanitizer=san)


def run_kernel(kernel_fn, launch: LaunchConfig, gpu: GPUConfig = TITAN_V,
               name: str = "", seed: int = 0, sanitize: bool = None,
               **params) -> KernelRun:
    """One-shot convenience wrapper around :class:`GridLauncher`."""
    return GridLauncher(gpu=gpu, seed=seed, sanitize=sanitize).run(
        kernel_fn, launch, name=name, **params)
