"""Small statistics helpers shared by the benchmarks and reports."""

from __future__ import annotations

import numpy as np


def mean_ci95(values) -> tuple:
    """Mean and half-width of the normal-approximation 95 % CI."""
    arr = np.asarray([v for v in values if not np.isnan(v)], dtype=float)
    if len(arr) == 0:
        return float("nan"), float("nan")
    if len(arr) == 1:
        return float(arr[0]), 0.0
    return (float(arr.mean()),
            float(1.96 * arr.std(ddof=1) / np.sqrt(len(arr))))


def geometric_mean(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0 or (arr <= 0).any():
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.log(arr).mean()))


def pearson_r(x, y) -> float:
    x = np.asarray(list(x), dtype=float)
    y = np.asarray(list(y), dtype=float)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("pearson_r needs two equal-length series (>=2)")
    return float(np.corrcoef(x, y)[0, 1])


def nanmean(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    return float(np.nanmean(arr)) if len(arr) else float("nan")
