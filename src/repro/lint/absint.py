"""Abstract interpretation over the kernel IR (st2-lint v2 engine).

Runs a worklist fixpoint over the CFG of :mod:`repro.lint.ir`,
propagating :class:`~repro.lint.domains.AbsVal` facts (integer
intervals × known bits × warp uniformity) through every DSL operation.
Branch conditions refine intervals on each successor edge and prune
provably-infeasible paths; loop heads widen after a few joins, so the
fixpoint always terminates.

The result is a :class:`FunctionSummary` holding

* :class:`AdderSite` — every integer adder emit (``k.iadd``/``isub``/
  ``imin``/``imax`` and the synthetic ``k.range`` loop-increment) with
  the *joined* abstract operands over all executions that reach it —
  the input to the static carry facts (:mod:`repro.lint.facts`) and
  the L6/L8 rules;
* :class:`BarrierSite` — every ``k.syncthreads`` with reachability and
  a divergence verdict over its ``k.where`` condition stack — the
  input to the flow-sensitive L7 rule.

Soundness notes: ``k.where`` bodies execute for *all* lanes (masked
recording), so conditions never refine values; kernel parameters are
launch-uniform by DSL convention; unknown calls and loads are
divergent ⊤.  Anything unmodellable bails the whole function
(``summary.bailed``) rather than producing facts.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.domains import (AbsVal, Interval, TOP_DIVERGENT,
                                TOP_UNIFORM, UNKNOWN_BITS, av_add,
                                av_and, av_cmp, av_floordiv,
                                av_invert, av_max, av_min, av_mod,
                                av_mul, av_neg, av_or, av_shl, av_shr,
                                av_sub, av_xor, const_val, refine_cmp,
                                swap_op)
from repro.lint.ir import (Block, Instr, IRFunction, LoweringError,
                           lower_function)

#: joins of one block's in-env before interval widening kicks in
WIDEN_AFTER = 8

_CMP_SYMS = ("<", "<=", ">", ">=", "==", "!=")

_DSL_CMP = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
            "eq": "==", "ne": "!="}

#: value-producing FP / SFU methods: ⊤ value, elementwise-uniform
_FP_METHODS = frozenset({
    "fadd", "fsub", "ffma", "fmin", "fmax", "fmul", "fdiv", "fneg",
    "fabs", "dadd", "dsub", "dfma", "dmul", "sqrt", "rsqrt", "rcp",
    "sin", "cos", "exp", "log", "cvt_f32", "cvt_i32", "sel",
})

#: methods whose results are per-lane (divergent ⊤)
_DIVERGENT_METHODS = frozenset({
    "ld_global", "ld_shared", "ld_const", "atomic_add",
    "atomic_add_shared", "shfl_down", "shfl_up", "shfl_xor",
    "warp_reduce_fadd", "warp_reduce_iadd",
})

#: passthrough host casts: abstract value of the first argument
_PASSTHROUGH_CALLS = frozenset({
    "np.asarray", "np.ascontiguousarray", "int", "float", "bool",
    "np.int64", "np.int32", "np.int16", "np.int8", "np.uint32",
    "np.uint64", "np.float32", "np.float64",
})


@dataclass
class AdderSite:
    """One integer adder emit with joined abstract operands."""

    kind: str                       # iadd|isub|imin|imax|loop-inc
    lineno: int
    scopes: Tuple[Optional[str], ...]
    op_a: AbsVal
    op_b: AbsVal
    visits: int = 0


@dataclass
class BarrierSite:
    """One ``k.syncthreads`` with its flow-sensitive verdict."""

    lineno: int
    n_conds: int
    reachable: bool
    divergent: bool                 # possibly-divergent mask on entry

    @property
    def clean(self) -> bool:
        return not self.reachable or not self.divergent


@dataclass
class FunctionSummary:
    """Everything the flow-sensitive rules need about one kernel."""

    name: str
    path: str
    lineno: int
    bailed: bool = False
    reason: str = ""
    adder_sites: List[AdderSite] = field(default_factory=list)
    barrier_sites: List[BarrierSite] = field(default_factory=list)


def _range_interval(start: AbsVal, stop: AbsVal,
                    step: AbsVal) -> AbsVal:
    """Abstract value of a ``k.range(start, stop, step)`` variable."""
    uniform = start.uniform and stop.uniform and step.uniform
    st = step.interval
    if st.lo is not None and st.lo == st.hi and st.lo != 0:
        if st.lo > 0:
            lo = start.interval.lo
            hi = None if stop.interval.hi is None \
                else stop.interval.hi - 1
        else:
            lo = None if stop.interval.lo is None \
                else stop.interval.lo + 1
            hi = start.interval.hi
        return AbsVal(Interval(lo, hi), UNKNOWN_BITS, uniform)
    return AbsVal(uniform=uniform)


def _range_empty(start: AbsVal, stop: AbsVal, step: AbsVal) -> bool:
    """Provably zero iterations (body unreachable)."""
    st = step.interval
    if st.lo is not None and st.lo == st.hi:
        if st.lo > 0:
            return (stop.interval.hi is not None
                    and start.interval.lo is not None
                    and stop.interval.hi <= start.interval.lo)
        if st.lo < 0:
            return (stop.interval.lo is not None
                    and start.interval.hi is not None
                    and stop.interval.lo >= start.interval.hi)
    return False


_CTX_ATTRS = {
    "tid": AbsVal(Interval(0, None), uniform=False),
    "ltid": AbsVal(Interval(0, None), uniform=False),
    "gtid": AbsVal(Interval(0, None), uniform=False),
    "warp": AbsVal(Interval(0, None), uniform=False),
    "warp_in_block": AbsVal(Interval(0, None), uniform=False),
    "mask": TOP_DIVERGENT,
    "n_threads": AbsVal(Interval(1, None), uniform=True),
    "n_warps": AbsVal(Interval(1, None), uniform=True),
    "block_id": AbsVal(Interval(0, None), uniform=True),
    "sm": AbsVal(Interval(0, None), uniform=True),
    "launch": TOP_UNIFORM,
}

_NONNEG_DIVERGENT = AbsVal(Interval(0, None), uniform=False)


class _Engine:
    def __init__(self, ir: IRFunction, consts: Dict[str, object]):
        self.ir = ir
        self.consts = consts
        self.blocks = {b.id: b for b in ir.blocks}
        self.def_map = ir.def_map()
        # joined-over-all-executions temp values (barrier conds and
        # adder operands are read from here after the fixpoint)
        self.joined: Dict[int, AbsVal] = {}
        # literal tuples of constants, for subscript/iteration folding
        self.tuples: Dict[int, tuple] = {}
        self.adder_sites: Dict[int, AdderSite] = {}
        self.barriers: Dict[int, Tuple[Instr, bool]] = {}
        self.bailed = False
        self.reason = ""

    # -- fixpoint ------------------------------------------------------

    def run(self) -> None:
        entry = self.ir.entry
        init: Dict[str, AbsVal] = {}
        # parameters are divergent ⊤: launch params of entry kernels
        # are host-uniform, but helper functions with a leading ``k``
        # receive per-lane vectors from their callers, and nothing
        # distinguishes the two statically
        for p in self.ir.params:
            init[p] = TOP_DIVERGENT
        in_envs: Dict[int, Dict[str, AbsVal]] = {entry: init}
        joins: Dict[int, int] = {}
        work = deque([entry])
        queued = {entry}
        cap = max(300, 80 * len(self.ir.blocks))
        steps = 0
        while work:
            steps += 1
            if steps > cap:
                self.bailed = True
                self.reason = "fixpoint iteration cap exceeded"
                return
            bid = work.popleft()
            queued.discard(bid)
            env = dict(in_envs[bid])
            succ_envs = self._transfer_block(self.blocks[bid], env)
            for sid, senv in succ_envs:
                if sid not in in_envs:
                    in_envs[sid] = senv
                else:
                    old = in_envs[sid]
                    joined = _join_env(old, senv)
                    joins[sid] = joins.get(sid, 0) + 1
                    if joins[sid] > WIDEN_AFTER:
                        joined = _widen_env(old, joined)
                    if joined == old:
                        continue
                    in_envs[sid] = joined
                if sid not in queued:
                    queued.add(sid)
                    work.append(sid)

    # -- per-block transfer --------------------------------------------

    def _transfer_block(self, block: Block, env: Dict[str, AbsVal]
                        ) -> List[Tuple[int, Dict[str, AbsVal]]]:
        tvals: Dict[int, AbsVal] = {}
        origins: Dict[int, Tuple[str, int]] = {}
        versions: Dict[str, int] = {}
        branch_cond: Optional[int] = None
        loop_prune_body = False

        for instr in block.instrs:
            if instr.op == "branch":
                branch_cond = instr.args[0]
                continue
            if instr.op == "loopiter":
                loop_prune_body = self._do_loopiter(instr, env, tvals)
                continue
            val = self._transfer(instr, env, tvals, origins, versions)
            if instr.dest is not None:
                tvals[instr.dest] = val
                prev = self.joined.get(instr.dest)
                self.joined[instr.dest] = val if prev is None \
                    else prev.join(val)

        succs = block.succs
        if not succs:
            return []
        if block.terminator == "branch" and branch_cond is not None \
                and len(succs) == 2:
            cond = tvals.get(branch_cond, TOP_DIVERGENT)
            truth = cond.truth()
            out = []
            if truth is not False:
                out.append((succs[0], self._refined(
                    env, branch_cond, True, tvals, origins, versions)))
            if truth is not True:
                out.append((succs[1], self._refined(
                    env, branch_cond, False, tvals, origins,
                    versions)))
            return out
        if block.terminator == "loop" and len(succs) == 2:
            out = []
            if not loop_prune_body:
                out.append((succs[0], dict(env)))
            out.append((succs[1], dict(env)))
            return out
        return [(sid, dict(env)) for sid in succs]

    def _do_loopiter(self, instr: Instr, env: Dict[str, AbsVal],
                     tvals: Dict[int, AbsVal]) -> bool:
        """Define the loop variable; returns True when the body is
        provably never entered."""
        if instr.name == "krange":
            start, stop, step = (
                tvals.get(t, self.joined.get(t, TOP_DIVERGENT))
                for t in instr.range_args)
            if instr.var:
                env[instr.var] = _range_interval(start, stop, step)
            return _range_empty(start, stop, step)
        # generic iteration
        var_val = TOP_DIVERGENT
        if instr.args:
            it = instr.args[0]
            seq = self.tuples.get(it)
            itv = tvals.get(it, self.joined.get(it, TOP_DIVERGENT))
            if seq is not None:
                var_val = None
                for elem in seq:
                    ev = const_val(elem)
                    var_val = ev if var_val is None \
                        else var_val.join(ev)
                var_val = var_val if var_val is not None else \
                    TOP_UNIFORM
            else:
                var_val = AbsVal(uniform=itv.uniform)
        if instr.var:
            env[instr.var] = var_val
        return False

    # -- per-instruction transfer --------------------------------------

    def _transfer(self, instr: Instr, env: Dict[str, AbsVal],
                  tvals: Dict[int, AbsVal],
                  origins: Dict[int, Tuple[str, int]],
                  versions: Dict[str, int]) -> AbsVal:
        op = instr.op
        get = lambda t: tvals.get(t, self.joined.get(t,  # noqa: E731
                                                     TOP_DIVERGENT))
        if op == "const":
            v = instr.value
            if isinstance(v, (tuple, list)) and instr.dest is not None:
                self.tuples[instr.dest] = tuple(v)
            return const_val(v)
        if op == "load":
            name = instr.name
            if name in env:
                if instr.dest is not None:
                    origins[instr.dest] = (name, versions.get(name, 0))
                return env[name]
            if name in self.consts:
                cv = self.consts[name]
                if isinstance(cv, (tuple, list)) \
                        and instr.dest is not None:
                    self.tuples[instr.dest] = tuple(cv)
                return const_val(cv)
            # unresolved global / builtin: a uniform host object
            return TOP_UNIFORM
        if op == "store":
            src = get(instr.args[0])
            env[instr.name] = src
            versions[instr.name] = versions.get(instr.name, 0) + 1
            return src
        if op == "ctxattr":
            return _CTX_ATTRS.get(instr.name, TOP_DIVERGENT)
        if op == "attr":
            base = get(instr.args[0])
            return AbsVal(uniform=base.uniform)
        if op == "binop":
            a, b = (get(t) for t in instr.args)
            return _binop(instr.name, a, b)
        if op == "unop":
            a = get(instr.args[0])
            if instr.name == "-":
                return av_neg(a)
            if instr.name == "~":
                return av_invert(a)
            if instr.name == "not":
                t = a.truth()
                if t is None:
                    return AbsVal(Interval(0, 1), uniform=a.uniform)
                return const_val(int(not t), uniform=a.uniform)
            return a
        if op == "boolop":
            vals = [get(t) for t in instr.args]
            out = vals[0]
            for v in vals[1:]:
                out = out.join(v)
            return out
        if op == "cmp":
            a, b = (get(t) for t in instr.args)
            if instr.name in _CMP_SYMS:
                return av_cmp(instr.name, a, b)
            return AbsVal(Interval(0, 1),
                          uniform=a.uniform and b.uniform)
        if op == "select":
            c, a, b = (get(t) for t in instr.args)
            out = a.join(b)
            return AbsVal(out.interval, out.bits,
                          out.uniform and c.uniform)
        if op == "subscript":
            base, idx = instr.args
            seq = self.tuples.get(base)
            iv = get(idx)
            if seq is not None and iv.interval.lo is not None \
                    and iv.interval.lo == iv.interval.hi \
                    and -len(seq) <= iv.interval.lo < len(seq):
                return const_val(seq[iv.interval.lo])
            bv = get(base)
            return AbsVal(uniform=bv.uniform and iv.uniform)
        if op == "tuple":
            elems = []
            literal: List[object] = []
            ok = True
            for t in instr.args:
                d = self.def_map.get(t)
                if d is not None and d.op == "const" \
                        and isinstance(d.value, (int, float, bool)):
                    literal.append(d.value)
                else:
                    ok = False
                elems.append(get(t))
            if ok and instr.dest is not None:
                self.tuples[instr.dest] = tuple(literal)
            uniform = all(e.uniform for e in elems) if elems else True
            return AbsVal(uniform=uniform)
        if op == "call":
            return self._call(instr, [get(t) for t in instr.args])
        if op == "dslcall":
            return self._dslcall(instr,
                                 [get(t) for t in instr.args])
        if op == "barrier":
            self.barriers[id(instr)] = (instr, True)
            return TOP_UNIFORM
        if op == "range_inc":
            start, stop, step = (get(t) for t in instr.range_args)
            # operands of the recorded increment: the *generator's*
            # iteration value (immune to body reassignment of the
            # loop variable) plus the constant step
            op_a = _range_interval(start, stop, step)
            self._record_site(instr, "loop-inc", op_a, step)
            return TOP_UNIFORM
        if op == "ret":
            return TOP_UNIFORM
        # unknown / fstring / comprehension results
        return TOP_DIVERGENT

    def _call(self, instr: Instr, args: List[AbsVal]) -> AbsVal:
        name = instr.name
        if name in ("np.zeros", "np.zeros_like"):
            return const_val(0)
        if name in ("np.ones", "np.ones_like"):
            return const_val(1)
        if name in ("np.full", "np.full_like"):
            return args[1] if len(args) >= 2 else TOP_UNIFORM
        if name in _PASSTHROUGH_CALLS:
            return args[0] if args else TOP_UNIFORM
        if name == "np.arange":
            return _NONNEG_DIVERGENT
        if name == "len":
            return AbsVal(Interval(0, None),
                          uniform=args[0].uniform if args else True)
        if name == "min" and len(args) == 2:
            return av_min(args[0], args[1])
        if name == "max" and len(args) == 2:
            return av_max(args[0], args[1])
        if name in ("range", "enumerate", "zip", "reversed"):
            uniform = all(a.uniform for a in args) if args else True
            return AbsVal(uniform=uniform)
        return TOP_DIVERGENT

    def _dslcall(self, instr: Instr, args: List[AbsVal]) -> AbsVal:
        m = instr.name
        if m == "iadd" and len(args) == 2:
            self._record_site(instr, "iadd", args[0], args[1])
            return av_add(args[0], args[1])
        if m == "isub" and len(args) == 2:
            self._record_site(instr, "isub", args[0], args[1])
            return av_sub(args[0], args[1])
        if m == "imin" and len(args) == 2:
            self._record_site(instr, "imin", args[0], args[1])
            return av_min(args[0], args[1])
        if m == "imax" and len(args) == 2:
            self._record_site(instr, "imax", args[0], args[1])
            return av_max(args[0], args[1])
        if m == "imul" and len(args) == 2:
            return av_mul(args[0], args[1])
        if m == "imad" and len(args) == 3:
            return av_add(av_mul(args[0], args[1]), args[2])
        if m == "idiv" and len(args) == 2:
            return av_floordiv(args[0], args[1])
        if m == "irem" and len(args) == 2:
            return av_mod(args[0], args[1])
        if m == "iand" and len(args) == 2:
            return av_and(args[0], args[1])
        if m == "ior" and len(args) == 2:
            return av_or(args[0], args[1])
        if m == "ixor" and len(args) == 2:
            return av_xor(args[0], args[1])
        if m == "shl" and len(args) == 2:
            return av_shl(args[0], args[1])
        if m == "shr" and len(args) == 2:
            return av_shr(args[0], args[1])
        if m in _DSL_CMP and len(args) == 2:
            return av_cmp(_DSL_CMP[m], args[0], args[1])
        if m in ("flt", "fgt") and len(args) == 2:
            return AbsVal(Interval(0, 1),
                          uniform=args[0].uniform and args[1].uniform)
        if m == "sel" and len(args) == 3:
            out = args[1].join(args[2])
            return AbsVal(out.interval, out.bits,
                          out.uniform and args[0].uniform)
        if m in ("thread_id", "global_id"):
            return _NONNEG_DIVERGENT
        if m in _FP_METHODS:
            uniform = all(a.uniform for a in args) if args else True
            if m == "sel":
                pass
            return AbsVal(uniform=uniform)
        if m == "shared":
            return TOP_UNIFORM
        if m in _DIVERGENT_METHODS:
            return TOP_DIVERGENT
        if m in ("st_global", "st_shared", "tensor_mma", "range",
                 "where", "inline"):
            return TOP_UNIFORM
        return TOP_DIVERGENT

    def _record_site(self, instr: Instr, kind: str, op_a: AbsVal,
                     op_b: AbsVal) -> None:
        site = self.adder_sites.get(id(instr))
        if site is None:
            self.adder_sites[id(instr)] = AdderSite(
                kind=kind, lineno=instr.lineno,
                scopes=instr.scopes, op_a=op_a, op_b=op_b, visits=1)
        else:
            site.op_a = site.op_a.join(op_a)
            site.op_b = site.op_b.join(op_b)
            site.visits += 1

    # -- branch refinement ---------------------------------------------

    def _refined(self, env: Dict[str, AbsVal], cond: int, assume: bool,
                 tvals: Dict[int, AbsVal],
                 origins: Dict[int, Tuple[str, int]],
                 versions: Dict[str, int]) -> Dict[str, AbsVal]:
        out = dict(env)
        self._refine_into(out, cond, assume, tvals, origins, versions,
                          depth=0)
        return out

    def _refine_into(self, env: Dict[str, AbsVal], t: int,
                     assume: bool, tvals: Dict[int, AbsVal],
                     origins: Dict[int, Tuple[str, int]],
                     versions: Dict[str, int], depth: int) -> None:
        if depth > 4:
            return
        instr = self.def_map.get(t)
        if instr is None:
            return
        get = lambda x: tvals.get(x, self.joined.get(  # noqa: E731
            x, TOP_DIVERGENT))
        if instr.op == "load":
            name, ver = origins.get(t, ("", -1))
            if name and versions.get(name, 0) == ver and name in env:
                v = env[name]
                iv = v.interval
                if assume:
                    if iv.lo == 0:
                        iv = Interval(1, iv.hi)
                    elif iv.hi == 0:
                        iv = Interval(iv.lo, -1)
                else:
                    iv = iv.meet(Interval(0, 0))
                if not iv.is_empty():
                    env[name] = AbsVal(iv, v.bits, v.uniform)
            return
        sym = instr.name
        if (instr.op == "cmp" and sym in _CMP_SYMS) or \
                (instr.op == "dslcall" and sym in _DSL_CMP):
            if instr.op == "dslcall":
                sym = _DSL_CMP[sym]
            if len(instr.args) != 2:
                return
            a, b = instr.args
            self._refine_side(env, a, sym, get(b), assume, origins,
                              versions)
            self._refine_side(env, b, swap_op(sym), get(a), assume,
                              origins, versions)
            return
        if instr.op == "boolop":
            if (sym == "and" and assume) or (sym == "or"
                                             and not assume):
                for arg in instr.args:
                    self._refine_into(env, arg, assume, tvals,
                                      origins, versions, depth + 1)
            return
        if instr.op == "binop" and sym in ("&", "|"):
            if (sym == "&" and assume) or (sym == "|"
                                           and not assume):
                for arg in instr.args:
                    self._refine_into(env, arg, assume, tvals,
                                      origins, versions, depth + 1)
            return
        if instr.op == "unop" and sym == "not":
            self._refine_into(env, instr.args[0], not assume, tvals,
                              origins, versions, depth + 1)

    def _refine_side(self, env: Dict[str, AbsVal], t: int, sym: str,
                     other: AbsVal, assume: bool,
                     origins: Dict[int, Tuple[str, int]],
                     versions: Dict[str, int]) -> None:
        instr = self.def_map.get(t)
        if instr is None or instr.op != "load":
            return
        name, ver = origins.get(t, ("", -1))
        if not name or versions.get(name, 0) != ver \
                or name not in env:
            return
        env[name] = refine_cmp(sym, env[name], other, assume)

    # -- summary -------------------------------------------------------

    def summary(self) -> FunctionSummary:
        barriers: List[BarrierSite] = []
        for block in self.ir.blocks:
            for instr in block.instrs:
                if instr.op != "barrier":
                    continue
                reachable = id(instr) in self.barriers
                divergent = False
                for cond in instr.where:
                    v = self.joined.get(cond, TOP_DIVERGENT)
                    if not v.uniform and v.truth() is None:
                        divergent = True
                        break
                barriers.append(BarrierSite(
                    lineno=instr.lineno, n_conds=len(instr.where),
                    reachable=reachable, divergent=divergent))
        sites = sorted(self.adder_sites.values(),
                       key=lambda s: (s.lineno, s.kind))
        return FunctionSummary(
            name=self.ir.name, path=self.ir.path,
            lineno=self.ir.lineno, bailed=self.bailed,
            reason=self.reason, adder_sites=sites,
            barrier_sites=sorted(barriers, key=lambda b: b.lineno))


def _binop(sym: str, a: AbsVal, b: AbsVal) -> AbsVal:
    if sym == "+":
        return av_add(a, b)
    if sym == "-":
        return av_sub(a, b)
    if sym == "*":
        return av_mul(a, b)
    if sym == "//":
        return av_floordiv(a, b)
    if sym == "%":
        return av_mod(a, b)
    if sym == "&":
        return av_and(a, b)
    if sym == "|":
        return av_or(a, b)
    if sym == "^":
        return av_xor(a, b)
    if sym == "<<":
        return av_shl(a, b)
    if sym == ">>":
        return av_shr(a, b)
    return AbsVal(uniform=a.uniform and b.uniform)


def _join_env(a: Dict[str, AbsVal],
              b: Dict[str, AbsVal]) -> Dict[str, AbsVal]:
    out: Dict[str, AbsVal] = {}
    for name in a.keys() | b.keys():
        out[name] = a.get(name, TOP_DIVERGENT).join(
            b.get(name, TOP_DIVERGENT))
    return out


def _widen_env(old: Dict[str, AbsVal],
               new: Dict[str, AbsVal]) -> Dict[str, AbsVal]:
    out: Dict[str, AbsVal] = {}
    for name in new:
        if name in old:
            out[name] = old[name].widen(new[name])
        else:
            out[name] = new[name]
    return out


# ----------------------------------------------------------------------
# module-level entry points
# ----------------------------------------------------------------------

def module_constants(tree: ast.Module) -> Dict[str, object]:
    """Fold module-level constant assignments (ints, floats, strings
    and tuples thereof, including simple arithmetic on earlier
    constants)."""
    consts: Dict[str, object] = {}

    def fold(node: ast.AST) -> object:
        if isinstance(node, ast.Constant) and isinstance(
                node.value, (int, float, str, bool)):
            return node.value
        if isinstance(node, ast.Name) and node.id in consts:
            return consts[node.id]
        if isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, ast.USub):
            v = fold(node.operand)
            if isinstance(v, (int, float)):
                return -v
            return _NO
        if isinstance(node, (ast.Tuple, ast.List)):
            items = [fold(e) for e in node.elts]
            if all(i is not _NO for i in items):
                return tuple(items)
            return _NO
        if isinstance(node, ast.BinOp):
            a, b = fold(node.left), fold(node.right)
            if isinstance(a, int) and isinstance(b, int) \
                    and not isinstance(a, bool) \
                    and not isinstance(b, bool):
                try:
                    if isinstance(node.op, ast.Add):
                        return a + b
                    if isinstance(node.op, ast.Sub):
                        return a - b
                    if isinstance(node.op, ast.Mult):
                        return a * b
                    if isinstance(node.op, ast.FloorDiv):
                        return a // b
                    if isinstance(node.op, ast.Mod):
                        return a % b
                    if isinstance(node.op, ast.LShift):
                        return a << b
                    if isinstance(node.op, ast.RShift):
                        return a >> b
                    if isinstance(node.op, ast.BitAnd):
                        return a & b
                    if isinstance(node.op, ast.BitOr):
                        return a | b
                    if isinstance(node.op, ast.BitXor):
                        return a ^ b
                except (ZeroDivisionError, ValueError):
                    return _NO
            return _NO
        return _NO

    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            v = fold(stmt.value)
            if v is not _NO:
                consts[stmt.targets[0].id] = v
            else:
                consts.pop(stmt.targets[0].id, None)
    return consts


_NO = object()


def analyze_function(fn: ast.FunctionDef,
                     consts: Optional[Dict[str, object]] = None,
                     path: str = "<string>") -> FunctionSummary:
    """Lower + abstractly interpret one kernel function.

    Never raises: unlowerable constructs yield a bailed summary, which
    downstream consumers treat as "no facts, no refinement".
    """
    try:
        ir = lower_function(fn, path)
    except (LoweringError, RecursionError) as exc:
        return FunctionSummary(name=fn.name, path=path,
                               lineno=fn.lineno, bailed=True,
                               reason=str(exc))
    engine = _Engine(ir, consts or {})
    engine.run()
    return engine.summary()


def is_kernel_fn(fn: ast.FunctionDef) -> bool:
    args = fn.args.args
    return bool(args) and args[0].arg == "k"


def analyze_module(tree: ast.Module, path: str = "<string>"
                   ) -> Dict[str, FunctionSummary]:
    """Summaries for every top-level kernel function of a module."""
    consts = module_constants(tree)
    out: Dict[str, FunctionSummary] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and is_kernel_fn(node):
            out[node.name] = analyze_function(node, consts, path)
    return out


def analyze_source(src: str, path: str = "<string>"
                   ) -> Dict[str, FunctionSummary]:
    """Parse + analyze; empty dict when the file does not parse."""
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return {}
    return analyze_module(tree, path)
