"""Abstract domains for the flow-sensitive analyzer (st2-lint v2).

Three orthogonal facts are tracked per value, combined in
:class:`AbsVal`:

* :class:`Interval` — inclusive integer bounds ``[lo, hi]`` with
  ``None`` as ±∞.  Only integer-valued quantities get finite bounds;
  floats and unknowns are ⊤.
* :class:`KnownBits` — a ``(mask, value)`` pair over a 64-bit universe:
  every bit set in ``mask`` is proven to equal the corresponding bit of
  ``value``.  The claim is only meaningful for values proven inside
  ``[0, 2**64)``; constructors and transfer functions enforce that
  invariant (anything possibly negative or ≥ 2**64 degrades to
  unknown bits).
* ``uniform`` — whether every lane of the warp provably holds the same
  value (the divergence half-lattice: ``uniform`` ⊑ ``divergent``).
  Thread-id sources and loads are divergent; parameters, constants and
  host loop variables are uniform.

All three lattices are finite-height under :func:`AbsVal.join` plus
interval widening, so the worklist engine in :mod:`repro.lint.absint`
terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

BIT_UNIVERSE = 64
MASK64 = (1 << BIT_UNIVERSE) - 1


def _min_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return min(a, b)


def _max_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return max(a, b)


@dataclass(frozen=True)
class Interval:
    """Inclusive integer bounds; ``None`` means unbounded on that side."""

    lo: Optional[int] = None
    hi: Optional[int] = None

    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def is_empty(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and self.lo > self.hi)

    def nonneg(self) -> bool:
        return self.lo is not None and self.lo >= 0

    def within(self, lo: int, hi: int) -> bool:
        """Provably contained in ``[lo, hi]``."""
        return (self.lo is not None and self.hi is not None
                and self.lo >= lo and self.hi <= hi)

    def join(self, other: "Interval") -> "Interval":
        return Interval(_min_opt(self.lo, other.lo),
                        _max_opt(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: a moving bound jumps to ∞."""
        lo = self.lo if (self.lo is not None and newer.lo is not None
                         and newer.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and newer.hi is not None
                         and newer.hi <= self.hi) else None
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        lo = _max_opt_meet(self.lo, other.lo)
        hi = _min_opt_meet(self.hi, other.hi)
        return Interval(lo, hi)


def _max_opt_meet(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _min_opt_meet(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


TOP_INTERVAL = Interval()


@dataclass(frozen=True)
class KnownBits:
    """``(mask, value)`` claim over the 64-bit universe.

    For every concrete value ``v`` described by the enclosing
    :class:`AbsVal`, ``v & mask == value`` — valid only when ``v`` is
    proven inside ``[0, 2**64)`` (the :class:`AbsVal` constructors
    guarantee this; an invalid claim is represented by ``mask == 0``).
    """

    mask: int = 0
    value: int = 0

    def is_unknown(self) -> bool:
        return self.mask == 0

    def bit(self, i: int) -> Optional[int]:
        """Return 0/1 when bit ``i`` is known, else None."""
        if self.mask >> i & 1:
            return self.value >> i & 1
        return None

    def join(self, other: "KnownBits") -> "KnownBits":
        mask = self.mask & other.mask & ~(self.value ^ other.value)
        mask &= MASK64
        return KnownBits(mask, self.value & mask)


UNKNOWN_BITS = KnownBits()


def bits_from_const(c: int) -> KnownBits:
    if 0 <= c < (1 << BIT_UNIVERSE):
        return KnownBits(MASK64, c)
    return UNKNOWN_BITS


def _bits_from_interval(iv: Interval) -> KnownBits:
    """Bit claims implied by tight bounds: every bit above the highest
    bit where ``lo`` and ``hi`` differ is pinned (in particular all
    high zero bits of a small non-negative range)."""
    if not iv.within(0, MASK64):
        return UNKNOWN_BITS
    lo, hi = iv.lo, iv.hi
    assert lo is not None and hi is not None
    diff = (lo ^ hi).bit_length()
    mask = (MASK64 >> diff) << diff if diff < BIT_UNIVERSE else 0
    mask &= MASK64
    return KnownBits(mask, lo & mask)


def _add_bits(a: KnownBits, b: KnownBits, cin: int = 0) -> KnownBits:
    """Ripple known-bits addition (LLVM-style, bit by bit).

    Sound for mathematical addition when the true sum stays below
    2**64 (the caller checks via the result interval).
    """
    mask = 0
    value = 0
    carry: Optional[int] = cin
    for i in range(BIT_UNIVERSE):
        ba, bb = a.bit(i), b.bit(i)
        if ba is not None and bb is not None and carry is not None:
            s = ba ^ bb ^ carry
            carry = (ba + bb + carry) >> 1
            mask |= 1 << i
            value |= s << i
        elif ba == 0 and bb == 0:
            # 0 + 0 + c: sum bit unknown (= carry), carry-out known 0
            carry = 0
        elif ba == 1 and bb == 1:
            carry = 1
        else:
            carry = None
    return KnownBits(mask, value)


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: interval × known-bits × uniformity."""

    interval: Interval = TOP_INTERVAL
    bits: KnownBits = UNKNOWN_BITS
    uniform: bool = False

    def join(self, other: "AbsVal") -> "AbsVal":
        return AbsVal(self.interval.join(other.interval),
                      self.bits.join(other.bits),
                      self.uniform and other.uniform)

    def widen(self, newer: "AbsVal") -> "AbsVal":
        """Widen intervals; bits/uniformity only descend (finite)."""
        return AbsVal(self.interval.widen(newer.interval),
                      self.bits.join(newer.bits),
                      self.uniform and newer.uniform)

    def all_bits(self) -> KnownBits:
        """Explicit bit claims merged with interval-implied ones."""
        implied = _bits_from_interval(self.interval)
        if implied.is_unknown():
            return self.bits
        mask = self.bits.mask | implied.mask
        value = (self.bits.value | implied.value) & mask
        return KnownBits(mask, value)

    def truth(self) -> Optional[bool]:
        """Definite truthiness, or None when unknown."""
        iv = self.interval
        if iv.lo is not None and iv.hi is not None \
                and iv.lo == 0 and iv.hi == 0:
            return False
        if (iv.lo is not None and iv.lo >= 1) \
                or (iv.hi is not None and iv.hi <= -1):
            return True
        return None


TOP = AbsVal()
TOP_UNIFORM = AbsVal(uniform=True)
TOP_DIVERGENT = AbsVal(uniform=False)


def const_val(c: object, uniform: bool = True) -> AbsVal:
    """Abstract a Python constant (bool/int get bounds; rest is ⊤)."""
    if isinstance(c, bool):
        c = int(c)
    if isinstance(c, int):
        return AbsVal(Interval(c, c), bits_from_const(c), uniform)
    return AbsVal(uniform=uniform)


def _result(iv: Interval, bits: KnownBits, uniform: bool) -> AbsVal:
    """Build a result, dropping bit claims invalid for the interval."""
    if not iv.within(0, MASK64):
        bits = UNKNOWN_BITS
    if iv.is_empty():
        iv = TOP_INTERVAL
    return AbsVal(iv, bits, uniform)


def _both_uniform(a: AbsVal, b: AbsVal) -> bool:
    return a.uniform and b.uniform


# ----------------------------------------------------------------------
# arithmetic transfer functions
# ----------------------------------------------------------------------

def av_add(a: AbsVal, b: AbsVal) -> AbsVal:
    lo = None if a.interval.lo is None or b.interval.lo is None \
        else a.interval.lo + b.interval.lo
    hi = None if a.interval.hi is None or b.interval.hi is None \
        else a.interval.hi + b.interval.hi
    iv = Interval(lo, hi)
    bits = UNKNOWN_BITS
    if iv.within(0, MASK64):
        bits = _add_bits(a.all_bits(), b.all_bits())
    return _result(iv, bits, _both_uniform(a, b))


def av_sub(a: AbsVal, b: AbsVal) -> AbsVal:
    lo = None if a.interval.lo is None or b.interval.hi is None \
        else a.interval.lo - b.interval.hi
    hi = None if a.interval.hi is None or b.interval.lo is None \
        else a.interval.hi - b.interval.lo
    return _result(Interval(lo, hi), UNKNOWN_BITS, _both_uniform(a, b))


def av_neg(a: AbsVal) -> AbsVal:
    lo = None if a.interval.hi is None else -a.interval.hi
    hi = None if a.interval.lo is None else -a.interval.lo
    return _result(Interval(lo, hi), UNKNOWN_BITS, a.uniform)


def av_mul(a: AbsVal, b: AbsVal) -> AbsVal:
    ia, ib = a.interval, b.interval
    if None in (ia.lo, ia.hi, ib.lo, ib.hi):
        return AbsVal(uniform=_both_uniform(a, b))
    corners = [ia.lo * ib.lo, ia.lo * ib.hi, ia.hi * ib.lo,
               ia.hi * ib.hi]
    return _result(Interval(min(corners), max(corners)), UNKNOWN_BITS,
                   _both_uniform(a, b))


def av_floordiv(a: AbsVal, b: AbsVal) -> AbsVal:
    ib = b.interval
    uniform = _both_uniform(a, b)
    if ib.lo is not None and ib.lo >= 1 and not a.interval.is_top():
        lo = None if a.interval.lo is None else (
            a.interval.lo // ib.lo if a.interval.lo < 0
            else (0 if ib.hi is None else a.interval.lo // ib.hi))
        hi = None if a.interval.hi is None or ib.lo is None \
            else a.interval.hi // ib.lo if a.interval.hi >= 0 \
            else (a.interval.hi // ib.hi if ib.hi is not None else 0)
        return _result(Interval(lo, hi), UNKNOWN_BITS, uniform)
    return AbsVal(uniform=uniform)


def av_mod(a: AbsVal, b: AbsVal) -> AbsVal:
    ib = b.interval
    uniform = _both_uniform(a, b)
    if ib.lo is not None and ib.lo >= 1 and ib.hi is not None:
        # Python % with a positive divisor is always in [0, m-1]
        return _result(Interval(0, ib.hi - 1), UNKNOWN_BITS, uniform)
    return AbsVal(uniform=uniform)


def av_and(a: AbsVal, b: AbsVal) -> AbsVal:
    ba, bb = a.all_bits(), b.all_bits()
    zeros = (ba.mask & ~ba.value) | (bb.mask & ~bb.value)
    ones = (ba.mask & ba.value) & (bb.mask & bb.value)
    bits = KnownBits((zeros | ones) & MASK64, ones & MASK64)
    iv = TOP_INTERVAL
    if a.interval.nonneg() and b.interval.nonneg():
        hi = _min_opt(a.interval.hi, b.interval.hi)
        iv = Interval(0, hi)
    elif a.interval.within(0, MASK64):
        iv = Interval(0, a.interval.hi)
    elif b.interval.within(0, MASK64):
        iv = Interval(0, b.interval.hi)
    return _result(iv, bits, _both_uniform(a, b))


def av_or(a: AbsVal, b: AbsVal) -> AbsVal:
    ba, bb = a.all_bits(), b.all_bits()
    ones = (ba.mask & ba.value) | (bb.mask & bb.value)
    zeros = (ba.mask & ~ba.value) & (bb.mask & ~bb.value)
    bits = KnownBits((zeros | ones) & MASK64, ones & MASK64)
    iv = TOP_INTERVAL
    if a.interval.nonneg() and b.interval.nonneg() \
            and a.interval.hi is not None and b.interval.hi is not None:
        width = max(a.interval.hi.bit_length(),
                    b.interval.hi.bit_length())
        iv = Interval(0, (1 << width) - 1)
    return _result(iv, bits, _both_uniform(a, b))


def av_xor(a: AbsVal, b: AbsVal) -> AbsVal:
    ba, bb = a.all_bits(), b.all_bits()
    mask = ba.mask & bb.mask
    bits = KnownBits(mask & MASK64, (ba.value ^ bb.value) & mask & MASK64)
    iv = TOP_INTERVAL
    if a.interval.nonneg() and b.interval.nonneg() \
            and a.interval.hi is not None and b.interval.hi is not None:
        width = max(a.interval.hi.bit_length(),
                    b.interval.hi.bit_length())
        iv = Interval(0, (1 << width) - 1)
    return _result(iv, bits, _both_uniform(a, b))


def av_shl(a: AbsVal, b: AbsVal) -> AbsVal:
    uniform = _both_uniform(a, b)
    ib = b.interval
    if ib.lo is None or ib.hi is None or ib.lo < 0:
        return AbsVal(uniform=uniform)
    lo = None if a.interval.lo is None else a.interval.lo << (
        ib.lo if a.interval.lo >= 0 else ib.hi)
    hi = None if a.interval.hi is None else a.interval.hi << (
        ib.hi if a.interval.hi >= 0 else ib.lo)
    iv = Interval(lo, hi)
    bits = UNKNOWN_BITS
    if ib.lo == ib.hi and iv.within(0, MASK64):
        k = ib.lo
        ba = a.all_bits()
        mask = ((ba.mask << k) | ((1 << k) - 1)) & MASK64
        bits = KnownBits(mask, (ba.value << k) & mask)
    return _result(iv, bits, uniform)


def av_shr(a: AbsVal, b: AbsVal) -> AbsVal:
    uniform = _both_uniform(a, b)
    ib = b.interval
    if ib.lo is None or ib.hi is None or ib.lo < 0:
        return AbsVal(uniform=uniform)
    lo = None if a.interval.lo is None else a.interval.lo >> (
        ib.hi if a.interval.lo >= 0 else ib.lo)
    hi = None if a.interval.hi is None else a.interval.hi >> (
        ib.lo if a.interval.hi >= 0 else ib.hi)
    iv = Interval(lo, hi)
    bits = UNKNOWN_BITS
    if ib.lo == ib.hi and a.interval.within(0, MASK64):
        k = ib.lo
        ba = a.all_bits()
        high_zero = MASK64 ^ ((1 << (BIT_UNIVERSE - k)) - 1) \
            if k else 0
        mask = ((ba.mask >> k) | high_zero) & MASK64
        bits = KnownBits(mask, (ba.value >> k) & mask)
    return _result(iv, bits, uniform)


def av_invert(a: AbsVal) -> AbsVal:
    """Python ``~x`` (= -x - 1, infinite-width two's complement)."""
    lo = None if a.interval.hi is None else -a.interval.hi - 1
    hi = None if a.interval.lo is None else -a.interval.lo - 1
    return _result(Interval(lo, hi), UNKNOWN_BITS, a.uniform)


def av_min(a: AbsVal, b: AbsVal) -> AbsVal:
    # result >= both los (needs both); result <= either known hi
    lo = _min_opt(a.interval.lo, b.interval.lo)
    hi = _min_opt_meet(a.interval.hi, b.interval.hi)
    return _result(Interval(lo, hi), UNKNOWN_BITS, _both_uniform(a, b))


def av_max(a: AbsVal, b: AbsVal) -> AbsVal:
    lo = _max_opt_meet(a.interval.lo, b.interval.lo)
    hi = None
    if a.interval.hi is not None and b.interval.hi is not None:
        hi = max(a.interval.hi, b.interval.hi)
    return _result(Interval(lo, hi), UNKNOWN_BITS, _both_uniform(a, b))


def av_join(a: AbsVal, b: AbsVal) -> AbsVal:
    return a.join(b)


# ----------------------------------------------------------------------
# comparisons
# ----------------------------------------------------------------------

_BOOL_TOP = Interval(0, 1)


def av_cmp(op: str, a: AbsVal, b: AbsVal) -> AbsVal:
    """Comparison result as a 0/1 abstract boolean."""
    ia, ib = a.interval, b.interval
    verdict: Optional[bool] = None
    if op == "<":
        if ia.hi is not None and ib.lo is not None and ia.hi < ib.lo:
            verdict = True
        elif ia.lo is not None and ib.hi is not None and ia.lo >= ib.hi:
            verdict = False
    elif op == "<=":
        if ia.hi is not None and ib.lo is not None and ia.hi <= ib.lo:
            verdict = True
        elif ia.lo is not None and ib.hi is not None and ia.lo > ib.hi:
            verdict = False
    elif op == ">":
        return av_cmp("<", b, a)
    elif op == ">=":
        return av_cmp("<=", b, a)
    elif op == "==":
        if (ia.lo is not None and ia.lo == ia.hi
                and ib.lo is not None and ib.lo == ib.hi):
            verdict = ia.lo == ib.lo
        elif (ia.hi is not None and ib.lo is not None
                and ia.hi < ib.lo) or \
             (ia.lo is not None and ib.hi is not None
                and ia.lo > ib.hi):
            verdict = False
    elif op == "!=":
        inner = av_cmp("==", a, b)
        t = inner.truth()
        verdict = None if t is None else not t
    uniform = _both_uniform(a, b)
    if verdict is None:
        return AbsVal(_BOOL_TOP, UNKNOWN_BITS, uniform)
    return const_val(int(verdict), uniform=uniform)


# ----------------------------------------------------------------------
# branch refinement
# ----------------------------------------------------------------------

_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
            "==": "!=", "!=": "=="}


def refine_cmp(op: str, var: AbsVal, other: AbsVal,
               assume: bool) -> AbsVal:
    """Refine ``var``'s interval assuming ``var <op> other`` is
    ``assume``; ``other`` stays untouched (refine it via the swapped
    operator)."""
    if not assume:
        op = _NEGATED[op]
    iv = var.interval
    o = other.interval
    if op == "<" and o.hi is not None:
        iv = iv.meet(Interval(None, o.hi - 1))
    elif op == "<=" and o.hi is not None:
        iv = iv.meet(Interval(None, o.hi))
    elif op == ">" and o.lo is not None:
        iv = iv.meet(Interval(o.lo + 1, None))
    elif op == ">=" and o.lo is not None:
        iv = iv.meet(Interval(o.lo, None))
    elif op == "==":
        iv = iv.meet(o)
    if iv.is_empty():
        # contradictory path: keep the original (caller prunes via
        # branch truthiness, not via empty envs)
        return var
    return AbsVal(iv, var.bits, var.uniform)


def swap_op(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "==": "==", "!=": "!="}[op]
