"""ST2 GPU area and power overhead accounting (paper Section VI).

Reproduces the paper's overhead arithmetic:

* level shifters — 2.8 um^2 each at 45 nm, one per adder input/output
  bit; 307 nW static and 1.38 fJ/transition at 16 nm FinFET; totals per
  chip and the resulting penalty on the average savings;
* the Carry Register File — 448 B per SM (16 x 224 bits), ~35 kB chip;
* the per-slice State/Cout DFFs — 14 bits per integer adder, 4 per FP32
  mantissa adder, 12 per FP64 — ~15 kB chip;
* the total ~50 kB, a ~0.09 % overhead on on-chip SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.slices import FP32_MANTISSA, FP64_MANTISSA, INT64
from repro.sim.config import GPUConfig, TITAN_V

LEVEL_SHIFTER_AREA_UM2 = 2.8          # 45 nm [Liu et al., ISCAS'15]
LEVEL_SHIFTER_STATIC_NW = 307.0       # 16 nm FinFET [Shapiro, TVLSI'16]
LEVEL_SHIFTER_DYNAMIC_FJ = 1.38       # per transition
LEVEL_SHIFTER_DELAY_PS = 20.8         # 500 mV -> 790 mV crossing


@dataclass
class OverheadReport:
    """All ST2 GPU area/power overheads for one chip configuration."""

    gpu: GPUConfig

    # -- level shifters ----------------------------------------------------

    @property
    def adders_per_sm(self) -> int:
        """Adder units that get shifters: ALUs + FPUs + DPUs."""
        g = self.gpu
        return g.alus_per_sm + g.fpus_per_sm + g.dpus_per_sm

    @property
    def shifters_per_adder(self) -> int:
        """One shifter per input-operand bit and per output bit, on the
        general 64-bit datapath: 2 x 64 inputs + 65 outputs."""
        return 2 * 64 + 65

    @property
    def n_level_shifters(self) -> int:
        return self.adders_per_sm * self.gpu.n_sms \
            * self.shifters_per_adder

    @property
    def shifter_area_mm2(self) -> float:
        return self.n_level_shifters * LEVEL_SHIFTER_AREA_UM2 * 1e-6

    @property
    def shifter_area_fraction(self) -> float:
        """Paper: < 0.68 % of the 815 mm^2 chip."""
        return self.shifter_area_mm2 / self.gpu.chip_area_mm2

    @property
    def shifter_static_w(self) -> float:
        """Paper: ~0.6 W total."""
        return self.n_level_shifters * LEVEL_SHIFTER_STATIC_NW * 1e-9

    def shifter_dynamic_w(self, adder_ops_per_s: float,
                          bits_toggling: int = 193) -> float:
        """Worst case: every shifter bit flips on every op (paper's
        overestimate gives ~470 uW averaged across the suite)."""
        return (adder_ops_per_s * bits_toggling
                * LEVEL_SHIFTER_DYNAMIC_FJ * 1e-15)

    # -- storage -----------------------------------------------------------

    @property
    def crf_bytes_per_sm(self) -> int:
        """448 B: 16 entries x 224 bits."""
        return self.gpu.crf_bytes_per_sm()

    @property
    def crf_bytes_chip(self) -> int:
        return self.crf_bytes_per_sm * self.gpu.n_sms

    @property
    def dff_bits_per_sm(self) -> int:
        """State + Cout flops: 14 per ALU adder, 4 per FP32 mantissa
        adder, 12 per FP64 mantissa adder."""
        g = self.gpu
        return (g.alus_per_sm * INT64.state_bits()
                + g.fpus_per_sm * FP32_MANTISSA.state_bits()
                + g.dpus_per_sm * FP64_MANTISSA.state_bits())

    @property
    def dff_bytes_chip(self) -> int:
        return self.dff_bits_per_sm * self.gpu.n_sms // 8

    @property
    def total_storage_bytes(self) -> int:
        return self.crf_bytes_chip + self.dff_bytes_chip

    @property
    def storage_fraction(self) -> float:
        """Paper: ~0.09 % of on-chip caches + register files."""
        return self.total_storage_bytes / self.gpu.onchip_sram_bytes

    # -- savings penalty -----------------------------------------------------

    def savings_penalty(self, avg_system_power_w: float,
                        adder_ops_per_s: float) -> float:
        """Fraction of system power the shifters cost (paper: ~0.5 %
        absolute on the average system-energy savings)."""
        total_w = self.shifter_static_w \
            + self.shifter_dynamic_w(adder_ops_per_s)
        return total_w / avg_system_power_w


def overhead_report(gpu: GPUConfig = TITAN_V) -> OverheadReport:
    """The Section V storage/logic overhead accounting for ``gpu``."""
    return OverheadReport(gpu=gpu)
