"""FP mantissa-adder operand extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops, floating

finite_f32 = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestFp32Operands:
    def test_shapes_and_ranges(self):
        op1, op2, cin = floating.fp32_add_operands(
            np.float32([1.5, 2.0]), np.float32([0.5, -1.0]))
        assert op1.shape == (2,)
        assert (op1 < (1 << 23)).all()
        assert (op2 < (1 << 23)).all()
        assert set(np.unique(cin)).issubset({0, 1})

    def test_same_sign_is_effective_add(self):
        __, __, cin = floating.fp32_add_operands(
            np.float32([3.0]), np.float32([1.5]))
        assert cin[0] == 0

    def test_opposite_sign_is_effective_subtract(self):
        __, __, cin = floating.fp32_add_operands(
            np.float32([3.0]), np.float32([-1.5]))
        assert cin[0] == 1

    def test_larger_magnitude_is_op1(self):
        # 1.0 has significand 0x800000 (fraction 0); 1.75 -> 0x600000
        op1, __, __ = floating.fp32_add_operands(
            np.float32([1.0]), np.float32([1.75]))
        assert op1[0] == 0x600000  # fraction bits of 1.75

    def test_alignment_shifts_small_operand(self):
        # 2^10 vs 1.0: exponent diff 10, significand of 1.0 shifted
        op1, op2, __ = floating.fp32_add_operands(
            np.float32([1024.0]), np.float32([1.0]))
        assert op2[0] == (1 << 23) >> 10 & ((1 << 23) - 1)

    def test_zero_operand_contributes_nothing(self):
        __, op2, cin = floating.fp32_add_operands(
            np.float32([5.0]), np.float32([0.0]))
        assert op2[0] == 0
        assert cin[0] == 0

    @given(x=finite_f32, y=finite_f32)
    @settings(max_examples=200)
    def test_never_crashes_and_stays_in_domain(self, x, y):
        op1, op2, cin = floating.fp32_add_operands(
            np.float32([x]), np.float32([y]))
        assert op1[0] < (1 << 23)
        assert op2[0] < (1 << 23)


class TestFp64Operands:
    def test_domain_width(self):
        op1, op2, __ = floating.fp64_add_operands(
            np.float64([1.5]), np.float64([2.5]))
        assert op1[0] < (1 << 52)
        assert op2[0] < (1 << 52)

    def test_subtract_inverts_aligned_operand(self):
        op1a, op2a, cina = floating.fp64_add_operands(
            np.float64([4.0]), np.float64([1.0]))
        op1s, op2s, cins = floating.fp64_add_operands(
            np.float64([4.0]), np.float64([-1.0]))
        assert op1a[0] == op1s[0]
        mask52 = (1 << 52) - 1
        assert op2s[0] == (~int(op2a[0])) & mask52
        assert (cina[0], cins[0]) == (0, 1)


class TestFmaOperands:
    def test_fma_aligns_product_against_addend(self):
        op1, op2, cin = floating.fp32_fma_operands(
            np.float32([2.0]), np.float32([3.0]), np.float32([1.0]))
        # product 6.0 dominates; addend 1.0 aligned by exp diff 2
        p1, p2, c = floating.fp32_add_operands(
            np.float32([6.0]), np.float32([1.0]))
        assert op1[0] == p1[0] and op2[0] == p2[0] and cin[0] == c[0]

    def test_accumulation_chain_shrinks_aligned_operand(self):
        """As an accumulator grows, the addend's aligned significand
        shrinks — the effect that makes FFMA chains predictable."""
        acc = np.float32([2.0, 32.0, 512.0])
        term = np.float32([1.5, 1.5, 1.5])
        __, op2, __ = floating.fp32_add_operands(acc, term)
        assert op2[0] > op2[1] > op2[2]


class TestCarryConsistency:
    def test_mantissa_carries_match_significand_math(self):
        """Adding the extracted operands in the 23-bit domain must
        reproduce the low bits of the true significand sum."""
        x = np.float32([1.25])
        y = np.float32([1.75])
        op1, op2, cin = floating.fp32_add_operands(x, y)
        total = bitops.add_wrapped(op1, op2, 23, cin)
        sig_x, sig_y = 0x200000, 0x600000   # fraction fields
        assert int(total[0]) == (sig_x + sig_y) & ((1 << 23) - 1)
