"""Behavioural models of the adders studied in the paper.

Three designs:

* :class:`ReferenceAdder` — the monolithic DesignWare-style adder at
  nominal voltage; always one cycle; the energy baseline.
* :class:`CarrySelectAdder` — classic CSLA: every slice always computes
  with *both* possible carry-ins, carries resolved by a select chain.
  Always one cycle, but pays ~2x slice energy on every operation.
* :class:`ST2Adder` — the paper's design (Figure 4).  Slices compute once
  with predicted carry-ins; at the end of the nominal cycle each slice
  compares its prediction against the carry-out its predecessor actually
  produced.  A mismatch raises the error signal ``E[i]``; the OR-chain
  ``S[i] = E[1] | ... | E[i]`` marks every higher-order slice suspect, and
  all suspect slices recompute in a second cycle with the inverted
  carry-in (CSLA-style select then picks the right result per slice).
  Results are therefore always correct; the cost is 1 extra cycle and the
  recomputation energy of the suspect slices.

All models are vectorised over a leading lane axis so a whole warp (32
threads) is evaluated per call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.core.slices import AdderGeometry

U64 = np.uint64


@dataclass
class AddOutcome:
    """Result of executing one (possibly warp-wide) sliced addition.

    Attributes
    ----------
    result:
        The (always correct) sums, ``uint64`` wrapped to the adder width.
    carry_out:
        Carry out of the most significant slice (per lane).
    slice_carries:
        True carry-in of every slice, shape ``(lanes, n_slices)``; column 0
        is the architectural carry-in.  These are the values written back
        to the history table.
    errors:
        Per-slice error signals ``E[i]`` (prediction mismatch at slice i),
        shape ``(lanes, n_slices)``; column 0 is always 0.
    mispredicted:
        Per-lane bool — any slice mispredicted, i.e. the lane needed a
        second cycle.
    cycles:
        Per-lane latency in cycles (1 or 2).
    recomputed_slices:
        Per-lane count of slices that ran a second computation
        (the suspect set ``S[i]``); drives the energy penalty and the
        paper's "1.94 slices recompute per thread misprediction" stat.
    """

    result: np.ndarray
    carry_out: np.ndarray
    slice_carries: np.ndarray
    errors: np.ndarray
    mispredicted: np.ndarray
    cycles: np.ndarray
    recomputed_slices: np.ndarray


def _as_lanes(values) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(values))
    if arr.ndim != 1:
        raise ValueError("operands must be scalars or 1-D lane vectors")
    return arr


class ReferenceAdder:
    """Monolithic full-width adder at nominal voltage (the baseline)."""

    def __init__(self, geometry: AdderGeometry):
        self.geometry = geometry

    def add(self, a, b, cin=0) -> AddOutcome:
        geo = self.geometry
        a = _as_lanes(a)
        b = _as_lanes(b)
        result = bitops.add_wrapped(a, b, geo.width, cin)
        cout = bitops.carry_out(a, b, geo.width, cin)
        carries = bitops.slice_carry_ins(a, b, geo.width, geo.slice_width, cin)
        lanes = result.shape[0]
        zeros = np.zeros((lanes, geo.n_slices), dtype=np.uint8)
        return AddOutcome(
            result=result,
            carry_out=cout,
            slice_carries=carries,
            errors=zeros,
            mispredicted=np.zeros(lanes, dtype=bool),
            cycles=np.ones(lanes, dtype=np.int64),
            recomputed_slices=np.zeros(lanes, dtype=np.int64),
        )

    def sub(self, a, b) -> AddOutcome:
        """a - b, implemented as a + ~b + 1 (the SUB path of Figure 4)."""
        return self.add(a, bitops.invert(b, self.geometry.width), cin=1)


class CarrySelectAdder(ReferenceAdder):
    """Classic CSLA [Bedrij 1962]: both carry cases computed always.

    Functionally identical to the reference; it differs only in the
    energy model (every slice above slice 0 computes twice, every cycle).
    Exposed so the energy study can contrast ST2 against it.
    """

    def slice_computations_per_add(self) -> int:
        """Slice-computation count per operation (energy proxy)."""
        geo = self.geometry
        return geo.n_slices + geo.n_predictions  # low slice once, rest twice


class ST2Adder:
    """The paper's spatio-temporal speculative sliced adder (Figure 4).

    The adder itself is speculation-agnostic: callers supply the predicted
    carry-ins (``Cpred``) obtained from a
    :class:`~repro.core.predictors.CarryPredictor`, and read back
    ``slice_carries`` to update the history.
    """

    def __init__(self, geometry: AdderGeometry):
        self.geometry = geometry

    def add(self, a, b, predictions, cin=0) -> AddOutcome:
        """Execute a (warp-wide) speculative addition.

        Parameters
        ----------
        a, b:
            Operand lane vectors (any integer dtype; wrapped to width).
        predictions:
            Predicted carry-ins for slices ``1..n_slices-1``, shape
            ``(lanes, n_predictions)`` of 0/1.
        cin:
            Architectural carry-in of slice 0 (0=ADD, 1=SUB-preinverted).
        """
        geo = self.geometry
        a = _as_lanes(a)
        b = _as_lanes(b)
        lanes = a.shape[0]
        predictions = np.asarray(predictions, dtype=np.uint8)
        if predictions.shape != (lanes, geo.n_predictions):
            raise ValueError(
                f"predictions shape {predictions.shape} != "
                f"{(lanes, geo.n_predictions)}")

        true_carries = bitops.slice_carry_ins(
            a, b, geo.width, geo.slice_width, cin)

        # Cycle 1: slice i computes with carry-in pred[i-1]; its carry-out
        # is a pure function of its own operand bits and that carry-in.
        cycle1_couts = self._slice_carry_outs(a, b, true_carries,
                                              predictions, cin)

        # E[i]: slice i's received prediction vs predecessor's actual
        # cycle-1 carry-out.  Slice 0 never errors.
        errors = np.zeros((lanes, geo.n_slices), dtype=np.uint8)
        if geo.n_predictions:
            errors[:, 1:] = (predictions != cycle1_couts[:, :-1]).astype(np.uint8)

        # S[i] = OR of E[1..i]: every slice at or above the first error
        # recomputes in cycle 2.
        suspect = np.cumsum(errors, axis=1) > 0
        mispredicted = suspect.any(axis=1)
        recomputed = suspect.sum(axis=1).astype(np.int64)
        cycles = np.where(mispredicted, 2, 1).astype(np.int64)

        # The recompute + select step is what guarantees correctness; the
        # final value equals the plain sum (proved by the CSLA argument,
        # checked exhaustively in tests).
        result = bitops.add_wrapped(a, b, geo.width, cin)
        cout = bitops.carry_out(a, b, geo.width, cin)
        return AddOutcome(
            result=result,
            carry_out=cout,
            slice_carries=true_carries,
            errors=errors,
            mispredicted=mispredicted,
            cycles=cycles,
            recomputed_slices=recomputed,
        )

    def sub(self, a, b, predictions) -> AddOutcome:
        """a - b via a + ~b + 1 (matching the hardware SUB mux)."""
        return self.add(a, bitops.invert(b, self.geometry.width),
                        predictions, cin=1)

    def _slice_carry_outs(self, a, b, true_carries, predictions,
                          cin: int) -> np.ndarray:
        """Cycle-1 carry-out of every slice, shape ``(lanes, n_slices)``.

        Slice i's cycle-1 carry-out depends on its own bits and its
        *assumed* carry-in (the prediction, or the architectural carry-in
        for slice 0).  Computed per slice from generate/propagate facts:
        ``cout = G | (P & cin_assumed)`` where G/P summarise the slice.
        """
        geo = self.geometry
        a_u = bitops.to_unsigned(a, geo.width)
        b_u = bitops.to_unsigned(b, geo.width)
        lanes = a_u.shape[0]
        couts = np.zeros((lanes, geo.n_slices), dtype=np.uint8)
        for idx, (lo, hi) in enumerate(geo.bounds):
            w = hi - lo
            sl_a = (a_u >> U64(lo)) & U64(bitops.mask(w))
            sl_b = (b_u >> U64(lo)) & U64(bitops.mask(w))
            if idx == 0:
                assumed = np.broadcast_to(
                    np.asarray(cin, dtype=np.uint8), (lanes,))
            else:
                assumed = predictions[:, idx - 1]
            # G: carry out with cin=0;  cout(cin)=G | (P & cin) where
            # P is detected by comparing cout under both cins.
            g = bitops.carry_out(sl_a, sl_b, w, 0).astype(np.uint8)
            cout1 = bitops.carry_out(sl_a, sl_b, w, 1).astype(np.uint8)
            p = (cout1 & ~g) & 1
            couts[:, idx] = g | (p & assumed)
        return couts


def verify_outcome(outcome: AddOutcome, a, b, width: int, cin=0) -> bool:
    """Cross-check an outcome against plain modular addition."""
    expect = bitops.add_wrapped(_as_lanes(a), _as_lanes(b), width, cin)
    return bool(np.array_equal(outcome.result, expect))
