"""Content-addressed, memory-mapped trace store.

One functional kernel execution produces everything the evaluation
stages need — the adder trace, the warp instruction stream, the memory
counters and the launch shape.  The store persists that capture exactly
once per ``(kernel, scale, seed, code_version)`` key and serves it to
any number of readers as **read-only memory maps**: each column is a
raw ``.npy`` file mapped directly to the geometry recorded in the
header (``np.load(mmap_mode="r")`` for entries that predate it), so
concurrent pool workers share the OS page cache instead of each
decompressing a private ``.npz`` copy.

On-disk layout (one directory per entry)::

    <root>/<key>/
        header.json      format version, identity, launch + memory
                         counters, pc labels, per-file sha256 digests
        add_pc.npy …     one raw .npy per AddTrace column
        inst_seq.npy …   one raw .npy per InstStream column

Entries are immutable once published: writers assemble the directory
under a temp name and ``rename(2)`` it into place, so readers never
observe a partial entry and concurrent capture races resolve to
whichever writer renames first (the loser discards its copy — both
captured identical bytes).

Layering: this module never computes a code version itself — callers
(the runner, ``st2-trace``) pass the digest that keys their own result
cache, keeping ``repro.sim`` free of any dependency on
``repro.runner``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.sim.config import LaunchConfig
from repro.sim.memory import MemoryStats
from repro.sim.trace import AddTrace, InstStream
from repro.sim.trace_io import _ADD_COLUMNS, _INST_COLUMNS

STORE_FORMAT_VERSION = 1

ENV_STORE_DIR = "REPRO_TRACE_DIR"

#: MemoryStats counters persisted per entry (the fields the power and
#: timing models read; address batches are a debugging aid and are not
#: stored).
_MEM_FIELDS = ("global_loads", "global_stores",
               "global_load_transactions", "global_store_transactions",
               "shared_loads", "shared_stores", "const_loads")

HEADER_NAME = "header.json"

#: Read-side memo capacity per :class:`TraceStore` instance: number of
#: served :class:`StoredRun` handles kept alive before the least
#: recently used one is dropped.
GET_MEMO_SIZE = 4

#: Publication workspaces (``.{key}-XXXX`` temp dirs) older than this
#: are considered abandoned by a crashed writer and swept by
#: :meth:`TraceStore.gc`.  Live writers assemble and rename within
#: seconds, so an hour is a comfortably wide safety margin.
ORPHAN_TMP_AGE_S = 3600.0


def default_store_dir() -> Path:
    """``$REPRO_TRACE_DIR`` or ``~/.cache/repro/traces``."""
    env = os.environ.get(ENV_STORE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "traces"


def trace_key(kernel: str, scale: float, seed: int,
              code_version: str) -> str:
    """Content-hash key of one distinct functional execution.

    Everything that determines the captured bytes is in the payload:
    the kernel identity, the workload scale, the RNG seed and the
    digest of the result-affecting source tree.
    """
    payload = {
        "kernel": kernel,
        "scale": scale,
        "seed": seed,
        "code_version": code_version,
        "store_format": STORE_FORMAT_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:40]


def _array_digest(arr: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(arr).tobytes()).hexdigest()


@dataclass
class StoredRun:
    """A :class:`~repro.sim.functional.KernelRun` stand-in rebuilt from
    a store entry.

    Carries exactly the fields the evaluation pipeline reads
    (``evaluate_run`` and the unit result): the trace and instruction
    stream are read-only memmaps; launch and memory counters are
    reconstructed values.
    """

    name: str
    launch: LaunchConfig
    trace: AddTrace
    insts: InstStream
    mem: MemoryStats
    n_static_pcs: int
    key: str = ""
    metadata: dict = field(default_factory=dict)


class TraceStore:
    """Directory-per-entry trace store with atomic publication.

    ``put`` captures are idempotent: publishing a key that already
    exists is a no-op (first writer wins), which is what makes
    concurrent stage-1 workers race-safe without locks.
    """

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_store_dir()
        self._get_memo = {}         # key -> (StoredRun, bytes mapped)

    # -- paths ---------------------------------------------------------

    def path(self, key: str) -> Path:
        return self.root / key

    def header_path(self, key: str) -> Path:
        return self.path(key) / HEADER_NAME

    def has(self, key: str) -> bool:
        return self.header_path(key).is_file()

    # -- writing -------------------------------------------------------

    def put(self, key: str, run, code_version: str = "",
            scale: float = None, seed: int = None,
            metadata: dict = None) -> bool:
        """Publish one captured run under ``key``.

        Returns True if this call created the entry, False if the key
        was already present (including losing a publication race —
        either way the entry now exists and holds identical bytes).
        """
        if self.has(key):
            obs.add("trace_store.put.existing")
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=self.root, prefix=f".{key}-"))
        try:
            with obs.timer("trace_store.put"):
                return self._publish(key, tmp, run, code_version, scale,
                                     seed, metadata)
        finally:
            if tmp.is_dir():
                shutil.rmtree(tmp, ignore_errors=True)

    def _publish(self, key: str, tmp: Path, run, code_version: str,
                 scale, seed, metadata: dict) -> bool:
        """Assemble the entry under ``tmp`` and rename it into place."""
        files = {}
        for col in _ADD_COLUMNS:
            files[f"add_{col}"] = getattr(run.trace, col)
        for col in _INST_COLUMNS:
            files[f"inst_{col}"] = getattr(run.insts, col)
        digests = {}
        columns = {}
        for name, arr in files.items():
            path = tmp / f"{name}.npy"
            np.save(path, np.ascontiguousarray(arr),
                    allow_pickle=False)
            digests[name] = _array_digest(arr)
            # record the mapping geometry so readers can np.memmap the
            # data directly instead of re-parsing every .npy header
            mapped = np.load(path, mmap_mode="r", allow_pickle=False)
            columns[name] = {"dtype": mapped.dtype.str,
                             "shape": list(mapped.shape),
                             "offset": int(mapped.offset)}
        header = {
            "format_version": STORE_FORMAT_VERSION,
            "key": key,
            "kernel": run.name,
            "scale": scale,
            "seed": seed,
            "code_version": code_version,
            "n_rows": int(len(run.trace)),
            "n_insts": int(len(run.insts)),
            "n_static_pcs": int(run.n_static_pcs),
            "pc_labels": list(run.trace.pc_labels),
            "launch": {"grid_blocks": run.launch.grid_blocks,
                       "block_threads": run.launch.block_threads},
            "mem": {f: int(getattr(run.mem, f))
                    for f in _MEM_FIELDS},
            "digests": digests,
            "columns": columns,
            "metadata": metadata or {},
        }
        with open(tmp / HEADER_NAME, "w") as fh:
            json.dump(header, fh, indent=1)
        try:
            os.rename(tmp, self.path(key))
        except OSError as exc:
            # Concurrent publication: another writer renamed the same
            # key first.  Both captured identical bytes (the key is a
            # content hash over everything that determines them), so
            # losing the race is success with created=False.
            if self.has(key):
                obs.add("trace_store.put.existing")
                return False
            if exc.errno in (errno.EEXIST, errno.ENOTEMPTY):
                # The race signature, yet no readable header: the
                # destination is debris (e.g. a half-deleted entry),
                # not a valid publication.  Surface it rather than
                # pretending the trace exists.
                raise RuntimeError(
                    f"trace-store entry {key} exists without a "
                    f"readable header; remove {self.path(key)} and "
                    f"re-capture") from exc
            raise
        obs.add("trace_store.put.created")
        return True

    def put_run(self, run, code_version: str = "", scale: float = None,
                seed: int = None, metadata: dict = None) -> str:
        """Key a run by its identity and :meth:`put` it; returns the key."""
        key = trace_key(run.name, scale, seed, code_version)
        self.put(key, run, code_version=code_version, scale=scale,
                 seed=seed, metadata=metadata)
        return key

    # -- reading -------------------------------------------------------

    def header(self, key: str) -> dict:
        with open(self.header_path(key)) as fh:
            header = json.load(fh)
        if header.get("format_version") != STORE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace-store format "
                f"{header.get('format_version')!r} in {self.path(key)}")
        return header

    def get(self, key: str) -> StoredRun:
        """Open one entry read-only; every column is a memmap.

        Entries are immutable once published, so repeated ``get``\\ s of
        a key are served from a small per-instance memo — the returned
        :class:`StoredRun` is shared between callers, which is safe
        because the evaluation pipeline only ever reads it.  A memo hit
        emits exactly the observability a real open would (the
        ``trace_store.get`` timer, the ``trace_store.open`` and
        ``bytes_mapped`` counters), so run metrics stay independent of
        how evaluation units are scheduled over pool workers.
        """
        memo = self._get_memo.get(key)
        if memo is not None:
            self._get_memo[key] = self._get_memo.pop(key)  # LRU refresh
            stored, mapped = memo
            with obs.timer("trace_store.get"):
                obs.add("trace_store.bytes_mapped", mapped)
            obs.add("trace_store.open")
            return stored
        mapped = 0
        with obs.timer("trace_store.get"):
            header = self.header(key)
            entry = self.path(key)
            geometry = header.get("columns", {})

            def col(name):
                nonlocal mapped
                geo = geometry.get(name)
                if geo is not None and 0 not in geo["shape"]:
                    # fast path: map straight to the recorded geometry
                    arr = np.memmap(entry / f"{name}.npy",
                                    dtype=np.dtype(geo["dtype"]),
                                    mode="r", offset=int(geo["offset"]),
                                    shape=tuple(geo["shape"]))
                else:   # empty column, or entry predates "columns"
                    arr = np.load(entry / f"{name}.npy", mmap_mode="r",
                                  allow_pickle=False)
                mapped += int(arr.nbytes)
                obs.add("trace_store.bytes_mapped", int(arr.nbytes))
                return arr

            trace = AddTrace(
                **{c: col(f"add_{c}") for c in _ADD_COLUMNS},
                pc_labels=list(header["pc_labels"]))
            insts = InstStream(**{c: col(f"inst_{c}")
                                  for c in _INST_COLUMNS})
            mem = MemoryStats(**{f: header["mem"][f]
                                 for f in _MEM_FIELDS})
        obs.add("trace_store.open")
        stored = StoredRun(
            name=header["kernel"],
            launch=LaunchConfig(header["launch"]["grid_blocks"],
                                header["launch"]["block_threads"]),
            trace=trace, insts=insts, mem=mem,
            n_static_pcs=header["n_static_pcs"],
            key=key, metadata=header.get("metadata", {}))
        self._get_memo[key] = (stored, mapped)
        while len(self._get_memo) > GET_MEMO_SIZE:
            self._get_memo.pop(next(iter(self._get_memo)))
        return stored

    # -- maintenance ---------------------------------------------------

    def keys(self) -> list:
        """Sorted keys of all published entries."""
        if not self.root.is_dir():
            return []
        return sorted(
            child.name for child in self.root.iterdir()
            if not child.name.startswith(".")
            and (child / HEADER_NAME).is_file())

    def entries(self) -> list:
        """``[(key, header), ...]`` for every published entry."""
        return [(key, self.header(key)) for key in self.keys()]

    def nbytes(self, key: str) -> int:
        entry = self.path(key)
        return sum(p.stat().st_size for p in entry.iterdir()
                   if p.is_file())

    def mtime(self, key: str) -> float:
        return self.header_path(key).stat().st_mtime

    def remove(self, key: str) -> None:
        self._get_memo.pop(key, None)
        shutil.rmtree(self.path(key), ignore_errors=True)

    def orphan_tmp_dirs(self,
                        min_age_s: float = ORPHAN_TMP_AGE_S) -> list:
        """Publication workspaces (``.{key}-XXXX``) abandoned by
        crashed writers: dot-prefixed directories untouched for at
        least ``min_age_s``.  Invisible to :meth:`keys` — without a
        sweep they leak forever under a long-lived server."""
        if not self.root.is_dir():
            return []
        # compared against filesystem mtimes, maintenance only —
        # never reaches a cached result
        now = time.time()  # st2-lint: disable=L5 — vs fs mtimes only
        orphans = []
        for child in self.root.iterdir():
            if not child.name.startswith(".") or not child.is_dir():
                continue
            try:
                age = now - child.stat().st_mtime
            except OSError:
                continue                # racing writer finished: gone
            if age >= min_age_s:
                orphans.append(child.name)
        return sorted(orphans)

    def verify(self, key: str) -> list:
        """Integrity-check one entry; returns a list of problems
        (empty = sound).  Checks: header readable, every column file
        present and loadable, row counts consistent, and each column's
        bytes matching the sha256 digest recorded at capture time."""
        problems = []
        try:
            header = self.header(key)
        except (OSError, ValueError, KeyError) as exc:
            return [f"unreadable header: {exc}"]
        digests = header.get("digests", {})
        expected_rows = {"add": header.get("n_rows"),
                         "inst": header.get("n_insts")}
        names = [f"add_{c}" for c in _ADD_COLUMNS] \
            + [f"inst_{c}" for c in _INST_COLUMNS]
        for name in names:
            path = self.path(key) / f"{name}.npy"
            try:
                arr = np.load(path, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError) as exc:
                problems.append(f"{name}: unreadable ({exc})")
                continue
            rows = expected_rows[name.split("_", 1)[0]]
            if rows is not None and len(arr) != rows:
                problems.append(
                    f"{name}: {len(arr)} rows, header says {rows}")
            if name in digests and _array_digest(arr) != digests[name]:
                problems.append(f"{name}: sha256 mismatch")
        return problems

    def gc(self, current_version: str = None, max_bytes: int = None,
           dry_run: bool = False) -> list:
        """Collect garbage; returns the keys that were (or would be)
        removed.

        Policy, in order:

        1. *Stale versions* — with ``current_version``, every entry
           whose recorded ``code_version`` differs is dead weight: no
           future run can ever read it (its key embeds the old digest).
        2. *Byte budget* — with ``max_bytes``, surviving entries are
           evicted oldest-first (header mtime) until the store fits.
        3. *Orphaned workspaces* — always: temp publication dirs left
           by crashed writers (:meth:`orphan_tmp_dirs`) are swept once
           they are old enough that no live writer can own them.
        """
        removed = []
        survivors = []
        for key in self.keys():
            try:
                header = self.header(key)
            except (OSError, ValueError):
                removed.append(key)         # corrupt: always collect
                continue
            if current_version is not None \
                    and header.get("code_version") != current_version:
                removed.append(key)
            else:
                survivors.append(key)
        if max_bytes is not None:
            sized = sorted(((self.mtime(k), k, self.nbytes(k))
                            for k in survivors))
            total = sum(n for _, _, n in sized)
            for _, key, n in sized:
                if total <= max_bytes:
                    break
                removed.append(key)
                total -= n
        orphans = self.orphan_tmp_dirs()
        if orphans:
            obs.add("trace_store.gc.orphans", len(orphans))
        removed.extend(orphans)
        if not dry_run:
            for key in removed:
                self.remove(key)
        return removed

    def __len__(self) -> int:
        return len(self.keys())
