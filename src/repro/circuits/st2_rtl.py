"""Register-transfer-level model of the ST2 adder (Figure 4, complete).

Where :class:`repro.core.adder.ST2Adder` is the fast behavioural model
the studies use, this module is an *executable specification* of the
hardware protocol, clock edge by clock edge, with every register of the
paper's schematic explicit:

* per-slice **input registers** (operand slices + carry prediction),
* per-slice **output registers** (the sum kept or overwritten),
* per-slice **Cout DFF** (the carry-out observed in cycle 1),
* per-slice **State DFF** (``S[i]`` — "my carry-in is suspect"),
* the **error wires** ``E[i] = Cpred[i-1] XOR Cout[i-1]`` and their
  OR-chain into the State DFFs,
* the **stall wire** (any ``E`` fired → occupy a second cycle), and
* the final **carry-select resolution** that decides, per suspect
  slice, whether the cycle-1 or cycle-2 sum is the correct one.

The tests drive it clock by clock and cross-validate every outcome
against the behavioural model — the RTL-level proof that one recompute
cycle always suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import bitops
from repro.core.slices import AdderGeometry


def _slice_add(a_bits: int, b_bits: int, cin: int, width: int) -> tuple:
    """One slice's combinational adder: returns (sum, cout)."""
    total = a_bits + b_bits + cin
    return total & ((1 << width) - 1), total >> width


@dataclass
class SliceState:
    """Architectural state of one slice (the paper's DFFs)."""

    input_a: int = 0
    input_b: int = 0
    cpred: int = 0            # latched carry prediction (slice > 0)
    output: int = 0           # Output Register
    cout: int = 0             # Cout DFF (cycle-1 carry-out)
    cout_alt: int = 0         # cycle-2 carry-out (inverse carry case)
    output_alt: int = 0       # cycle-2 sum
    state: int = 0            # State DFF: S[i]


class ST2AdderRTL:
    """Clock-accurate ST2 adder. Drive with :meth:`start_op` then
    :meth:`clock` until :attr:`busy` clears; read :attr:`result`."""

    def __init__(self, geometry: AdderGeometry):
        self.geometry = geometry
        self.slices = [SliceState() for _ in range(geometry.n_slices)]
        self.cin = 0
        self.phase = 0            # 0 idle, 1 after cycle 1, 2 done
        self.errors: list = [0] * geometry.n_slices
        self.stall = 0            # the FU-busy signal to the scoreboard
        self.cycles_used = 0

    # -- driving -----------------------------------------------------------

    def start_op(self, a: int, b: int, predictions, cin: int = 0) -> None:
        """Latch operands and predictions into the input registers and
        reset the State DFFs (the 'new operation' edge)."""
        geo = self.geometry
        a = int(bitops.to_unsigned(a, geo.width))
        b = int(bitops.to_unsigned(b, geo.width))
        if len(predictions) != geo.n_predictions:
            raise ValueError(
                f"need {geo.n_predictions} predictions, "
                f"got {len(predictions)}")
        for idx, (lo, hi) in enumerate(geo.bounds):
            s = self.slices[idx]
            mask = (1 << (hi - lo)) - 1
            s.input_a = (a >> lo) & mask
            s.input_b = (b >> lo) & mask
            s.cpred = int(predictions[idx - 1]) if idx > 0 else 0
            s.state = 0
            s.cout = s.cout_alt = 0
            s.output = s.output_alt = 0
        self.cin = cin
        self.phase = 0
        self.errors = [0] * geo.n_slices
        self.stall = 0
        self.cycles_used = 0

    @property
    def busy(self) -> bool:
        return self.phase in (0, 1) and (self.phase == 0 or self.stall)

    def clock(self) -> None:
        """One rising clock edge."""
        if self.phase == 0:
            self._cycle_one()
        elif self.phase == 1 and self.stall:
            self._cycle_two()
        self.cycles_used += 1

    # -- the two cycles -----------------------------------------------------

    def _assumed_cin(self, idx: int) -> int:
        return self.cin if idx == 0 else self.slices[idx].cpred

    def _cycle_one(self) -> None:
        geo = self.geometry
        # all slices compute in parallel with their assumed carry-ins
        for idx, (lo, hi) in enumerate(geo.bounds):
            s = self.slices[idx]
            s.output, s.cout = _slice_add(
                s.input_a, s.input_b, self._assumed_cin(idx), hi - lo)
        # end of nominal cycle: error detection and OR-chain
        self.errors = [0] * geo.n_slices
        suspect = 0
        for idx in range(1, geo.n_slices):
            e = self.slices[idx].cpred ^ self.slices[idx - 1].cout
            self.errors[idx] = e
            suspect |= e
            self.slices[idx].state = suspect
        self.stall = suspect
        self.phase = 1

    def _cycle_two(self) -> None:
        geo = self.geometry
        # only suspect slices recompute, with the inverse carry-in
        for idx, (lo, hi) in enumerate(geo.bounds):
            s = self.slices[idx]
            if idx > 0 and s.state:
                s.output_alt, s.cout_alt = _slice_add(
                    s.input_a, s.input_b, 1 - s.cpred, hi - lo)
        # carry-select resolution: ripple the now-known carries through
        # the per-slice (kept, recomputed) pairs
        carry = self.cin
        for idx in range(geo.n_slices):
            s = self.slices[idx]
            assumed = self._assumed_cin(idx)
            if idx > 0 and s.state and carry != assumed:
                s.output, s.cout = s.output_alt, s.cout_alt
            # non-suspect slices were computed with the correct carry
            carry = s.cout
        self.stall = 0
        self.phase = 2

    # -- observation ----------------------------------------------------------

    @property
    def result(self) -> int:
        value = 0
        for idx, (lo, _hi) in enumerate(self.geometry.bounds):
            value |= self.slices[idx].output << lo
        return value

    @property
    def carry_out(self) -> int:
        return self.slices[-1].cout

    @property
    def recomputed_slices(self) -> int:
        return sum(s.state for s in self.slices[1:])

    def run_op(self, a: int, b: int, predictions, cin: int = 0) -> tuple:
        """Convenience: drive a whole operation; returns
        ``(result, cycles, recomputed)``."""
        self.start_op(a, b, predictions, cin)
        self.clock()
        if self.stall:
            self.clock()
        return self.result, self.cycles_used, self.recomputed_slices
