"""The sweep engine end-to-end on the local backend: completion,
kill/resume with zero re-execution, the prune==exhaustive invariant
and resume-compatibility checks.

Real kernel executions are kept cheap: one short kernel at quarter
scale, with a module-shared result cache so repeated sweeps over the
same grid hit the cache instead of re-simulating.
"""

import json

import pytest

from repro import obs
from repro.api import SweepSpec
from repro.runner.manifest import read_manifest_tolerant
from repro.sweep import (ResumeMismatch, SweepError, SweepOptions,
                         SweepResult, frontiers_equal, run_sweep)


def small_spec(name="engine-t", **overrides):
    base = dict(name=name, kernels=("qrng_K2",),
                axes=(("mechanism", ("static1", "operand")),
                      ("peek", (False, True))),
                scale=0.25, seed=0, engine="auto", aux=False)
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("sweep-cache"))


def make_options(cache_dir, **overrides):
    base = dict(use_cache=True, cache_dir=cache_dir, workers=2,
                registry=obs.Obs())
    base.update(overrides)
    return SweepOptions(**base)


class TestLocalSweep:
    def test_complete_run(self, cache_dir, tmp_path):
        manifest = tmp_path / "sweep.manifest.jsonl"
        result = run_sweep(small_spec(), manifest,
                           make_options(cache_dir))
        assert result.complete
        assert result.backend == "local"
        # 4 combos, all valid, all distinct classes, 1 kernel each
        assert result.executed_units + result.reused_units \
            + result.skipped_units >= len(result.points)
        assert result.frontier
        point_keys = {p.key for p in result.points}
        assert {p.key for p in result.frontier} <= point_keys
        for p in result.points:
            assert set(p.objectives) == {"energy_saved",
                                         "misprediction_rate",
                                         "perf_overhead"}
            assert p.per_kernel.keys() == {"qrng_K2"}

    def test_result_wire_round_trip(self, cache_dir, tmp_path):
        result = run_sweep(small_spec(), tmp_path / "m.jsonl",
                           make_options(cache_dir))
        doc = json.loads(json.dumps(result.to_wire()))
        clone = SweepResult.from_wire(doc)
        assert clone.spec == result.spec
        assert frontiers_equal(list(clone.frontier),
                               list(result.frontier))
        assert clone.executed_units == result.executed_units

    def test_future_result_version_rejected(self, cache_dir,
                                            tmp_path):
        result = run_sweep(small_spec(), tmp_path / "m.jsonl",
                           make_options(cache_dir))
        doc = result.to_wire()
        doc["sweep_result_version"] = 99
        with pytest.raises(SweepError, match="newer"):
            SweepResult.from_wire(doc)

    def test_manifest_records_every_done_unit(self, cache_dir,
                                              tmp_path):
        manifest = tmp_path / "m.jsonl"
        result = run_sweep(small_spec(), manifest,
                           make_options(cache_dir))
        header, units, n_bad = read_manifest_tolerant(manifest)
        assert n_bad == 0
        assert header["kind"] == "sweep"
        assert header["sweep_digest"] == small_spec().digest()
        assert len(units) == result.executed_units \
            + result.reused_units


class TestResume:
    def test_killed_sweep_resumes_with_zero_reexecution(
            self, tmp_path):
        """The acceptance criterion: kill mid-sweep (via the unit
        budget), restart, and no done unit runs again — proven with
        the cache off, so reuse can only come from the manifest."""
        manifest = tmp_path / "resume.jsonl"
        first = run_sweep(
            small_spec(), manifest,
            SweepOptions(use_cache=False, workers=2, max_units=2,
                         prune=False, registry=obs.Obs()))
        assert not first.complete
        assert first.executed_units == 2

        registry = obs.Obs()
        second = run_sweep(
            small_spec(), manifest,
            SweepOptions(use_cache=False, workers=2, prune=False,
                         registry=registry))
        assert second.complete
        assert second.reused_units == 2
        assert second.executed_units == 2
        counters = registry.snapshot()["counters"]
        assert counters["sweep.units.reused"] == 2
        assert counters["sweep.units.executed"] == 2

    def test_resumed_frontier_matches_fresh(self, cache_dir,
                                            tmp_path):
        partial = tmp_path / "partial.jsonl"
        run_sweep(small_spec(), partial,
                  make_options(cache_dir, max_units=2, prune=False))
        resumed = run_sweep(small_spec(), partial,
                            make_options(cache_dir, prune=False))
        fresh = run_sweep(small_spec(), tmp_path / "fresh.jsonl",
                          make_options(cache_dir, prune=False))
        assert frontiers_equal(list(resumed.frontier),
                               list(fresh.frontier))

    def test_spec_change_raises_resume_mismatch(self, cache_dir,
                                                tmp_path):
        manifest = tmp_path / "m.jsonl"
        run_sweep(small_spec(), manifest, make_options(cache_dir))
        with pytest.raises(ResumeMismatch):
            run_sweep(small_spec(seed=1), manifest,
                      make_options(cache_dir))

    def test_foreign_manifest_rejected(self, cache_dir, tmp_path):
        """An st2-run manifest (valid header, no sweep rider) must be
        refused, not silently overwritten."""
        manifest = tmp_path / "foreign.jsonl"
        manifest.write_text(json.dumps(
            {"type": "run", "manifest_version": 1,
             "n_units": 0}) + "\n")
        with pytest.raises(ResumeMismatch):
            run_sweep(small_spec(), manifest, make_options(cache_dir))

    def test_torn_tail_line_tolerated(self, cache_dir, tmp_path):
        manifest = tmp_path / "torn.jsonl"
        run_sweep(small_spec(), manifest,
                  make_options(cache_dir, max_units=2, prune=False))
        with manifest.open("a") as fh:
            fh.write('{"kernel": "qrng_K2", "conf')   # torn write
        registry = obs.Obs()
        result = run_sweep(small_spec(), manifest,
                           make_options(cache_dir, prune=False,
                                        registry=registry))
        assert result.complete
        counters = registry.snapshot()["counters"]
        assert counters["sweep.resume.torn_lines"] == 1


class TestPruneInvariant:
    def test_pruned_equals_exhaustive(self, cache_dir, tmp_path):
        """The tentpole invariant on a grid with real equivalence
        classes and a real domination-prunable tail."""
        spec = small_spec(
            name="invariant",
            axes=(("mechanism", ("static1", "operand", "prev")),
                  ("peek", (False, True)),
                  ("thread_key", ("", "ltid"))))
        pruned = run_sweep(spec, tmp_path / "p.jsonl",
                           make_options(cache_dir, prune=True))
        exhaustive = run_sweep(spec, tmp_path / "e.jsonl",
                               make_options(cache_dir, prune=False))
        assert pruned.complete and exhaustive.complete
        assert frontiers_equal(list(pruned.frontier),
                               list(exhaustive.frontier))
        # pruning skipped the equivalent members exhaustive ran
        assert pruned.skipped_units > 0
        assert exhaustive.skipped_units == 0
        assert pruned.executed_units + pruned.reused_units \
            < exhaustive.executed_units + exhaustive.reused_units

    def test_exhaustive_verifies_equivalence(self, cache_dir,
                                             tmp_path):
        """Exhaustive mode re-executes every class member and merges
        them only when the objectives agree bit-for-bit."""
        spec = small_spec(name="verify",
                          axes=(("mechanism", ("static1",)),
                                ("thread_key", ("", "gtid"))))
        result = run_sweep(spec, tmp_path / "v.jsonl",
                           make_options(cache_dir, prune=False))
        assert result.complete
        (point,) = result.points
        assert sorted(point.members) == ["Gtid+staticOne",
                                         "staticOne"]


class TestOptions:
    def test_unknown_backend(self, cache_dir, tmp_path):
        with pytest.raises(SweepError, match="unknown sweep backend"):
            run_sweep(small_spec(), tmp_path / "m.jsonl",
                      make_options(cache_dir, backend="fleet"))

    def test_serve_backend_needs_server(self, cache_dir, tmp_path):
        with pytest.raises(SweepError, match="server address"):
            run_sweep(small_spec(), tmp_path / "m.jsonl",
                      make_options(cache_dir, backend="serve"))

    def test_unknown_kernel_propagates(self, cache_dir, tmp_path):
        with pytest.raises(KeyError):
            run_sweep(small_spec(kernels=("warp_drive",)),
                      tmp_path / "m.jsonl", make_options(cache_dir))
