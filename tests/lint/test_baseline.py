"""Baseline fingerprints: stable under line drift, strict under edits."""

import pytest

from repro.lint.analyzer import lint_source
from repro.lint.baseline import (load_baseline, new_findings,
                                 write_baseline)

BAD = """\
def kernel(k, out):
    t = k.thread_id()
    x = t + 1
    k.st_global(out, t, x)
"""


def only(findings):
    assert len(findings) == 1
    return findings[0]


class TestFingerprint:
    def test_stable_under_line_shift(self):
        before = only(lint_source(BAD, path="a/b/kern.py", hashed=False))
        shifted = only(lint_source("import numpy\n\n" + BAD,
                                   path="a/b/kern.py", hashed=False))
        assert before.line != shifted.line
        assert before.fingerprint() == shifted.fingerprint()

    def test_changes_when_flagged_line_edited(self):
        before = only(lint_source(BAD, path="kern.py", hashed=False))
        edited = only(lint_source(BAD.replace("t + 1", "t + 2"),
                                  path="kern.py", hashed=False))
        assert before.fingerprint() != edited.fingerprint()

    def test_ignores_leading_path_components(self):
        a = only(lint_source(BAD, path="/home/x/repo/src/repro/kern.py",
                             hashed=False))
        b = only(lint_source(BAD, path="/ci/build/src/repro/kern.py",
                             hashed=False))
        assert a.fingerprint() == b.fingerprint()


class TestBaselineRoundTrip:
    def test_write_then_load(self, tmp_path):
        findings = lint_source(BAD, path="kern.py", hashed=False)
        path = tmp_path / "baseline.json"
        recorded = write_baseline(path, findings)
        assert sum(recorded.values()) == 1
        assert load_baseline(path) == recorded

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "fingerprints": {}}')
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_suppressed_findings_not_recorded(self, tmp_path):
        src = BAD.replace("t + 1",
                          "t + 1  # st2-lint: disable=L1 — fixture")
        findings = lint_source(src, path="kern.py", hashed=False)
        recorded = write_baseline(tmp_path / "b.json", findings)
        assert recorded == {}


class TestNewFindings:
    def test_baselined_finding_is_accepted(self, tmp_path):
        findings = lint_source(BAD, path="kern.py", hashed=False)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        assert new_findings(findings, load_baseline(path)) == []

    def test_extra_copy_exceeds_budget(self):
        findings = lint_source(BAD, path="kern.py", hashed=False)
        baseline = {findings[0].fingerprint(): 1}
        doubled = findings + findings
        assert len(new_findings(doubled, baseline)) == 1

    def test_unknown_finding_is_new(self):
        findings = lint_source(BAD, path="kern.py", hashed=False)
        assert new_findings(findings, {}) == findings
