"""The committed counterexample corpus.

Every genuine bug the fuzzer finds leaves a **minimized fixture**
behind: a small JSON file holding the reduced kernel source, its
launch geometry, the data seed and the oracle it used to fail.  The
corpus lives in ``tests/fuzz/corpus/`` and is replayed two ways —

* ``pytest`` parametrizes over every fixture and asserts the kernel
  now passes **all** oracles (regressions reopen as test failures
  with the minimized program in the name);
* ``st2-fuzz replay`` runs the same check from the command line /
  CI, with ``--json`` machine output.

Fixtures are plain data on purpose: reviewable in a diff, replayable
without the generator, stable across generator changes.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.fuzz.harness import materialize
from repro.fuzz.oracles import (DEFAULT_CONFIGS, KernelVerdict,
                                check_kernel)

#: repo-relative home of the committed fixtures
CORPUS_DIR = os.path.join("tests", "fuzz", "corpus")

_SLUG = re.compile(r"[^a-z0-9]+")


@dataclass(frozen=True)
class Fixture:
    """One minimized counterexample."""

    name: str
    oracle: str
    seed: int
    description: str
    source: str
    blocks: int
    threads: int
    data_seed: int
    configs: str = DEFAULT_CONFIGS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "oracle": self.oracle,
            "seed": self.seed,
            "description": self.description,
            "source": self.source,
            "launch": {"blocks": self.blocks, "threads": self.threads},
            "data_seed": self.data_seed,
            "configs": self.configs,
        }


def fixture_from_dict(payload: Dict[str, Any]) -> Fixture:
    launch = payload["launch"]
    return Fixture(
        name=payload["name"], oracle=payload["oracle"],
        seed=int(payload["seed"]), description=payload["description"],
        source=payload["source"], blocks=int(launch["blocks"]),
        threads=int(launch["threads"]),
        data_seed=int(payload["data_seed"]),
        configs=payload.get("configs", DEFAULT_CONFIGS))


def fixture_filename(fixture: Fixture) -> str:
    slug = _SLUG.sub("-", fixture.description.lower()).strip("-")[:48]
    return f"{fixture.oracle}-{slug or fixture.name}.json"


def save_fixture(fixture: Fixture, directory: str) -> str:
    """Write one fixture; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, fixture_filename(fixture))
    with open(path, "w") as fh:
        json.dump(fixture.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_fixture(path: str) -> Fixture:
    with open(path) as fh:
        return fixture_from_dict(json.load(fh))


def corpus_paths(directory: str) -> List[str]:
    """Every fixture file under ``directory``, sorted (empty if the
    directory does not exist yet)."""
    if not os.path.isdir(directory):
        return []
    return sorted(os.path.join(directory, name)
                  for name in os.listdir(directory)
                  if name.endswith(".json"))


def replay_fixture(fixture: Fixture, workdir: str,
                   filename: str = "") -> KernelVerdict:
    """Re-run **all** oracles over one fixture's kernel.

    A healthy corpus replays green: each fixture captures a bug that
    has since been fixed, so the kernel must now pass everything.
    """
    from repro.runner.units import resolve_configs

    bundle = materialize(fixture.source, fixture.name, workdir,
                         filename=filename)
    bundle.blocks = fixture.blocks
    bundle.threads = fixture.threads
    bundle.data_seed = fixture.data_seed
    configs: Sequence[Any] = resolve_configs(fixture.configs)
    return check_kernel(bundle, configs, adder_seed=fixture.seed)


__all__ = ["CORPUS_DIR", "Fixture", "corpus_paths", "fixture_filename",
           "fixture_from_dict", "load_fixture", "replay_fixture",
           "save_fixture"]
