"""The 23-kernel suite registry and its paper-level properties."""

import numpy as np
import pytest

from repro.isa.opcodes import MixCategory
from repro.kernels.runtime import blocks_for, scaled
from repro.kernels.suite import (KERNEL_NAMES, SUITE, clear_cache,
                                 run_kernel, run_suite, spec_by_name)

SCALE = 0.15


@pytest.fixture(scope="module")
def suite_runs():
    return run_suite(scale=SCALE, seed=0)


class TestRegistry:
    def test_exactly_23_kernels(self):
        assert len(SUITE) == 23
        assert len(set(KERNEL_NAMES)) == 23

    def test_paper_kernel_names_present(self):
        for name in ("pathfinder", "msort_K2", "qrng_K1", "b+tree_K2",
                     "sgemm", "mri-q_K1", "dwt2d_K1", "sobolQRNG"):
            assert name in KERNEL_NAMES

    def test_three_source_suites(self):
        suites = {s.suite for s in SUITE}
        assert suites == {"Rodinia", "CUDA Samples", "Parboil"}

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            spec_by_name("nonexistent_K9")

    def test_cache_returns_same_object(self):
        a = run_kernel("pathfinder", scale=SCALE)
        b = run_kernel("pathfinder", scale=SCALE)
        assert a is b
        clear_cache()
        c = run_kernel("pathfinder", scale=SCALE)
        assert c is not a


class TestSuiteProperties:
    def test_every_kernel_produces_adder_trace(self, suite_runs):
        for name, run in suite_runs.items():
            assert len(run.trace) > 100, name
            assert len(run.insts) > 10, name

    def test_arithmetic_intensity_figure1(self, suite_runs):
        """Paper Fig 1: most kernels have >20 % ALU+FPU instructions."""
        intensive = 0
        for run in suite_runs.values():
            mix = run.insts.mix()
            total = sum(mix.values())
            arith = sum(v for k, v in mix.items()
                        if k is not MixCategory.OTHER)
            if arith / total > 0.20:
                intensive += 1
        assert intensive >= 20       # paper: 21 of 23

    def test_traces_are_deterministic(self):
        a = spec_by_name("kmeans_K1").run(scale=SCALE, seed=3)
        b = spec_by_name("kmeans_K1").run(scale=SCALE, seed=3)
        assert np.array_equal(a.trace.op_a, b.trace.op_a)
        assert np.array_equal(a.trace.pc, b.trace.pc)

    def test_seed_changes_data_not_structure(self):
        a = spec_by_name("sad_K1").run(scale=SCALE, seed=0)
        b = spec_by_name("sad_K1").run(scale=SCALE, seed=9)
        assert a.n_static_pcs == b.n_static_pcs
        assert not np.array_equal(a.trace.op_a, b.trace.op_a)

    def test_scaling_grows_traces(self):
        small = spec_by_name("histo_K1").run(scale=0.1)
        large = spec_by_name("histo_K1").run(scale=0.4)
        assert len(large.trace) > len(small.trace)

    def test_mixed_widths_across_suite(self, suite_runs):
        widths = set()
        for run in suite_runs.values():
            widths.update(np.unique(run.trace.width).tolist())
        assert {23, 32, 64}.issubset(widths)


class TestRuntimeHelpers:
    def test_scaled_minimum_and_multiple(self):
        assert scaled(10, 0.01, minimum=4) == 4
        assert scaled(10, 1.0, multiple=8) == 16
        assert scaled(16, 1.0, multiple=8) == 16

    def test_blocks_for(self):
        assert blocks_for(100, 128) == 1
        assert blocks_for(129, 128) == 2
