"""Least-squares calibration of the power model (paper Section V-C).

For every micro-benchmark we know the model's raw component powers
``P_i`` and measure the synthetic silicon; Eq. (1) is linear in the
unknowns ``(Scale_1..Scale_9, P_const, P_idleSM)``, so a non-negative
least-squares solve recovers them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from repro.power.components import Component
from repro.power.hardware import SyntheticSilicon
from repro.power.microbench import build_microbenchmarks
from repro.power.model import GPUPowerModel


@dataclass
class CalibrationResult:
    model: GPUPowerModel
    residual_w: float           # solver residual norm
    n_benchmarks: int
    measurements_w: np.ndarray
    predictions_w: np.ndarray

    @property
    def training_mape(self) -> float:
        err = np.abs(self.predictions_w - self.measurements_w)
        return float((err / self.measurements_w).mean())


def calibrate(silicon: SyntheticSilicon = None, microbenches=None,
              base_model: GPUPowerModel = None) -> CalibrationResult:
    """Fit the Eq. (1) scale factors on the stressor suite."""
    silicon = silicon or SyntheticSilicon()
    microbenches = microbenches or build_microbenchmarks()
    base = base_model or GPUPowerModel()

    components = list(Component)
    rows = []
    measured = []
    for mb in microbenches:
        raw = [base.raw_component_power_w(mb, c) for c in components]
        rows.append(raw + [1.0, float(mb.n_idle_sms)])
        measured.append(silicon.measure_w(mb))
    a = np.array(rows)
    y = np.array(measured)

    solution, residual = nnls(a, y)
    scales = {c: float(s) for c, s in zip(components, solution)}
    model = GPUPowerModel(scales=scales,
                          p_const_w=float(solution[-2]),
                          p_idle_sm_w=float(solution[-1]),
                          energies_pj=dict(base.energies_pj))
    predictions = a @ solution
    return CalibrationResult(model=model, residual_w=float(residual),
                             n_benchmarks=len(microbenches),
                             measurements_w=y, predictions_w=predictions)


_cached_model: dict = {}


def calibrated_model(seed: int = 0) -> GPUPowerModel:
    """Memoised default calibrated model (deterministic per seed)."""
    if seed not in _cached_model:
        _cached_model[seed] = calibrate(SyntheticSilicon(seed=seed)).model
    return _cached_model[seed]
