"""Runtime sanitizer: race epochs, barrier divergence, trace coverage."""

import numpy as np
import pytest

from repro.sim.config import LaunchConfig
from repro.sim.functional import GridLauncher, run_kernel
from repro.sim.sanitizer import (ENV_SANITIZE, BarrierDivergenceError,
                                 DeviceVector, SharedMemoryRaceError,
                                 UntracedArithmeticError,
                                 env_sanitize_default)


def launch(fn, threads=64, blocks=1, sanitize=True, **params):
    launcher = GridLauncher(sanitize=sanitize)
    out = launcher.buffer("out", np.zeros(threads * blocks, np.int64))
    run = launcher.run(fn, LaunchConfig(blocks, threads), out=out,
                       **params)
    return run, out


class TestSharedMemoryRaces:
    def test_cross_warp_write_read_race_is_caught(self):
        def racy(k, out):
            t = k.thread_id()
            s = k.shared(64, np.int64)
            k.st_shared(s, t, t)
            # reversed read: warp 0 reads what warp 1 just wrote
            v = k.ld_shared(s, k.isub(63, t))
            k.st_global(out, t, v)

        with pytest.raises(SharedMemoryRaceError, match="write→read"):
            launch(racy)

    def test_barrier_fixed_twin_passes(self):
        def fixed(k, out):
            t = k.thread_id()
            s = k.shared(64, np.int64)
            k.st_shared(s, t, t)
            k.syncthreads()
            v = k.ld_shared(s, k.isub(63, t))
            k.st_global(out, t, v)

        __, out = launch(fixed)
        assert list(out.data) == list(range(63, -1, -1))

    def test_same_warp_exchange_is_not_a_race(self):
        """One warp is executed in lockstep: its threads may exchange
        through shared memory without a block barrier."""
        def warp_local(k, out):
            t = k.thread_id()
            s = k.shared(32, np.int64)
            k.st_shared(s, t, t)
            v = k.ld_shared(s, k.isub(31, t))
            k.st_global(out, t, v)

        __, out = launch(warp_local, threads=32)
        assert list(out.data) == list(range(31, -1, -1))

    def test_read_then_foreign_write_race(self):
        """The binomial-style hazard: reading a neighbour cell that
        another warp overwrites in the same barrier interval."""
        def racy(k, out):
            t = k.thread_id()
            s = k.shared(65, np.int64)
            k.st_shared(s, t, t)
            k.syncthreads()
            v = k.ld_shared(s, k.iadd(t, 1))
            k.st_shared(s, t, v)
            k.st_global(out, t, v)

        with pytest.raises(SharedMemoryRaceError, match="read→write"):
            launch(racy)

    def test_epoch_resets_between_blocks(self):
        def kernel(k, out):
            t = k.thread_id()
            s = k.shared(64, np.int64)
            k.st_shared(s, t, t)
            k.syncthreads()
            v = k.ld_shared(s, k.isub(63, t))
            k.st_global(out, k.iadd(t, k.block_id * 64), v)

        run, __ = launch(kernel, blocks=3)
        assert run.sanitizer is not None

    def test_cross_warp_atomics_do_not_race(self):
        """atomicAdd serialises: colliding warps are fine without a
        barrier."""
        def histogram(k, out):
            t = k.thread_id()
            s = k.shared(4, np.int64)
            k.atomic_add_shared(s, k.irem(t, np.int64(4)), 1)
            k.syncthreads()
            with k.where(k.lt(t, 4)):
                k.st_global(out, t, k.ld_shared(s, t))

        __, out = launch(histogram, threads=128)
        assert list(out.data[:4]) == [32, 32, 32, 32]

    def test_atomic_then_foreign_read_without_barrier_races(self):
        def racy(k, out):
            t = k.thread_id()
            s = k.shared(1, np.int64)
            k.atomic_add_shared(s, 0, 1)
            v = k.ld_shared(s, 0)
            k.st_global(out, t, v)

        with pytest.raises(SharedMemoryRaceError, match="write→read"):
            launch(racy)


class TestBarrierDivergence:
    def test_divergent_barrier_raises(self):
        def bad(k, out):
            t = k.thread_id()
            with k.where(k.lt(t, 16)):
                k.syncthreads()

        with pytest.raises(BarrierDivergenceError):
            launch(bad)

    def test_uniform_barrier_is_fine(self):
        def good(k, out):
            t = k.thread_id()
            with k.where(k.lt(t, 16)):
                k.st_global(out, t, t)
            k.syncthreads()

        launch(good)


class TestTraceCoverageProbe:
    def test_untraced_add_raises_at_finish(self):
        def leaky(k, out):
            t = k.thread_id()
            x = t + 1
            k.st_global(out, t, x)

        with pytest.raises(UntracedArithmeticError, match="add"):
            launch(leaky)

    def test_suppression_comment_is_honoured(self):
        def annotated(k, out):
            t = k.thread_id()
            x = t + 1  # st2-lint: disable=L1 — fixture: folded offset
            k.st_global(out, t, x)

        run, out = launch(annotated)
        assert run.sanitizer.untraced_sites          # recorded …
        assert run.sanitizer.unsuppressed_untraced() == []   # … quietly
        assert list(out.data) == list(range(1, 65))

    def test_comparisons_and_dsl_math_do_not_trip(self):
        def clean(k, out):
            t = k.thread_id()
            big = t > 10
            x = k.iadd(t, 1)
            y = k.sel(big, x, t)
            k.st_global(out, t, y)

        launch(clean)

    def test_values_are_plain_arrays_when_disabled(self):
        captured = {}

        def kernel(k, out):
            captured["t"] = k.thread_id()
            k.st_global(out, captured["t"], 1)

        run, __ = launch(kernel, sanitize=False)
        assert run.sanitizer is None
        assert not isinstance(captured["t"], DeviceVector)

    def test_values_are_wrapped_when_enabled(self):
        captured = {}

        def kernel(k, out):
            captured["t"] = k.thread_id()
            k.st_global(out, captured["t"], 1)

        launch(kernel, sanitize=True)
        assert isinstance(captured["t"], DeviceVector)


class TestDefaults:
    def test_off_by_default(self):
        def kernel(k, out):
            k.st_global(out, k.thread_id(), 1)

        launcher = GridLauncher()
        assert launcher.sanitize is False
        out = launcher.buffer("out", np.zeros(32, np.int64))
        run = launcher.run(kernel, LaunchConfig(1, 32), out=out)
        assert run.sanitizer is None

    def test_env_variable_flips_default(self, monkeypatch):
        monkeypatch.setenv(ENV_SANITIZE, "1")
        assert env_sanitize_default() is True
        assert GridLauncher().sanitize is True
        monkeypatch.setenv(ENV_SANITIZE, "0")
        assert env_sanitize_default() is False

    def test_run_kernel_passthrough(self):
        def leaky(k, out):
            t = k.thread_id()
            k.st_global(out, t + 1, 1)

        launcher = GridLauncher()
        out = launcher.buffer("out", np.zeros(33, np.int64))
        with pytest.raises(UntracedArithmeticError):
            run_kernel(leaky, LaunchConfig(1, 32), sanitize=True,
                       out=out)

    def test_identical_traces_with_and_without(self):
        """Sanitizing must observe, never perturb: traces and results
        match the plain run exactly."""
        def kernel(k, out):
            t = k.thread_id()
            s = k.shared(64, np.int64)
            k.st_shared(s, t, k.imul(t, 3))
            k.syncthreads()
            v = k.ld_shared(s, k.isub(63, t))
            k.st_global(out, t, k.iadd(v, 7))

        run_a, out_a = launch(kernel, sanitize=True)
        run_b, out_b = launch(kernel, sanitize=False)
        assert np.array_equal(out_a.data, out_b.data)
        assert len(run_a.trace) == len(run_b.trace)
        assert np.array_equal(run_a.trace.value, run_b.trace.value)
        assert run_a.n_static_pcs == run_b.n_static_pcs
