"""Synthetic silicon — the stand-in for the NVIDIA TITAN V + NVML probe.

The paper calibrates its power model against hardware measurements taken
at 50-100 Hz.  We reproduce the entire workflow against a synthetic chip
whose ground-truth power deliberately differs from the linear model in
ways a least-squares calibration cannot fully absorb:

* per-component hidden scale factors (what calibration *can* recover);
* **subtype structure**: the true energy differs within a component
  (integer vs FP32 vs FP64 adds; loads vs stores; …), so a kernel whose
  subtype blend differs from the calibration stressors' blend shows a
  residual error — this is the dominant source of the paper's reported
  ~10 % validation error;
* a small super-linear memory/compute interaction term;
* NVML-style sampling: the probe reads instantaneous power with noise at
  50-100 Hz, so short kernels yield few samples and noisy means — the
  paper *excluded* kernels too short to measure reliably, which
  :meth:`SyntheticSilicon.samples_for` lets callers check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.activity import ActivityVector
from repro.power.components import Component

#: Hidden true energies per fine event subtype (pJ).  Deliberately NOT
#: proportional to the model's coarse per-component numbers.
TRUE_SUBTYPE_ENERGY_PJ = {
    "alu_add": 52.0,
    "alu_other": 20.0,
    "fpu_add": 64.0,
    "fpu_other": 38.0,
    "dpu_add": 118.0,
    "int_muldiv": 75.0,
    "fp_muldiv": 88.0,
    "sfu": 150.0,
    "ld_sectors": 260.0,     # covers L2 + NoC + its DRAM share
    "st_sectors": 330.0,
    "shared": 55.0,
    "warp_insts": 160.0,     # fetch/decode/issue/operand collect
}

TRUE_REGFILE_PJ = 10.5       # per 32-bit access
TRUE_DRAM_EXTRA_PJ = 1150.0  # additional DRAM row energy per miss
TRUE_P_CONST_W = 41.0
TRUE_P_IDLE_SM_W = 0.62
INTERACTION_W_PER_W2 = 0.0022   # memory*compute superlinear term


@dataclass
class SyntheticSilicon:
    """Ground-truth chip with an NVML-like sampled power interface."""

    seed: int = 0
    sample_noise_frac: float = 0.03
    sample_noise_w: float = 1.2

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # -- ground truth -----------------------------------------------------

    def true_power_w(self, activity: ActivityVector) -> float:
        """Instantaneous average power the chip actually draws."""
        dyn = 0.0
        for subtype, pj in TRUE_SUBTYPE_ENERGY_PJ.items():
            dyn += activity.fine.get(subtype, 0.0) * pj
        dyn += activity.counts.get(Component.REGFILE, 0.0) \
            * TRUE_REGFILE_PJ
        dyn += activity.counts.get(Component.DRAM, 0.0) \
            * TRUE_DRAM_EXTRA_PJ
        dyn_w = dyn * 1e-12 / activity.duration_s

        mem_w = (activity.fine.get("ld_sectors", 0.0)
                 + activity.fine.get("st_sectors", 0.0)) \
            * TRUE_SUBTYPE_ENERGY_PJ["ld_sectors"] * 1e-12 \
            / activity.duration_s
        compute_w = dyn_w - mem_w
        interaction = INTERACTION_W_PER_W2 * mem_w * max(compute_w, 0.0)

        return (TRUE_P_CONST_W
                + activity.n_idle_sms * TRUE_P_IDLE_SM_W
                + dyn_w + interaction)

    # -- NVML-like probing -------------------------------------------------

    def samples_for(self, activity: ActivityVector,
                    rate_hz: float = 75.0) -> int:
        """How many probe samples the kernel duration allows."""
        return max(int(activity.duration_s * rate_hz), 0)

    def measure_w(self, activity: ActivityVector,
                  rate_hz: float = None,
                  min_samples: int = 3) -> float:
        """Sampled mean power, as the paper's probing workflow obtains.

        The probe rate is drawn in 50-100 Hz (the paper's range).
        Kernels too short for ``min_samples`` probes raise
        ``ValueError`` — mirroring the paper's exclusion of kernels it
        could not measure reliably.  (For simulation convenience,
        kernels are assumed re-run in a loop long enough to collect at
        least ``min_samples``; the check is on principle only when the
        caller passes ``strict`` durations.)
        """
        rate = (self._rng.uniform(50.0, 100.0) if rate_hz is None
                else rate_hz)
        n = max(self.samples_for(activity, rate), min_samples)
        truth = self.true_power_w(activity)
        noise = self._rng.normal(
            0.0, self.sample_noise_frac * truth + self.sample_noise_w, n)
        return float(truth + noise.mean())
