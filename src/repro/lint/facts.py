"""Static carry facts: compile-time Peek from abstract interpretation.

The dynamic Peek rule resolves a slice carry-in when the previous
slice's operand MSbs agree at runtime.  This module proves the same
kind of knowledge *statically*: for every integer adder site the
:mod:`repro.lint.absint` engine summarised, it maps the abstract
operands into the recorded adder domain (``to_unsigned``/``invert``
exactly as :class:`repro.sim.dsl.BlockContext` emits them) and pins
slice-boundary carries with two complementary rules per boundary
``j`` (carry into slice ``j+1`` of a 32-bit, 8-bit-slice adder):

* **interval rule** — ``hi(a) + hi(b) + cin < 2**m`` proves carry 0;
  ``lo(a) + lo(b) + cin >= 2**m`` (with both operands below ``2**m``)
  proves carry 1, where ``m = 8*(j+1)``;
* **ripple known-bits rule** — a carry chain over the known bits of
  both operands, the static generalisation of Peek's MSb agreement.

Facts are keyed by *PC label* (``function:line[#tag]``) — the identity
:class:`repro.isa.pc.PcTable` stores in every trace.  Labels are not
unique (one line can intern several PCs), so facts from all sites that
share a label are merged by agreement: a boundary survives only when
every site pins it to the same value.  Sites under a dynamic
``k.inline`` tag, or whose operands cannot be proven inside
``[0, 2**32)``, export nothing — missing facts are always sound.

Consumed by :class:`repro.core.predictors.StaticPeekPredictor` (via
``apply_static_facts``) and exported by ``st2-lint facts --json``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.lint.absint import (AdderSite, FunctionSummary,
                               analyze_module, module_constants)
from repro.lint.domains import AbsVal, Interval, KnownBits

#: recorded integer adder geometry (matches ``dsl.BlockContext``)
WIDTH = 32
SLICE_BITS = 8
#: carry-in boundaries j=0..2 — carry into slice j+1, at bit 8*(j+1)
N_BOUNDARIES = WIDTH // SLICE_BITS - 1

_M32 = 1 << WIDTH
_MASK32 = _M32 - 1
_HIGH_MASK = ((1 << 64) - 1) ^ _MASK32


@dataclass(frozen=True)
class CarryFact:
    """Statically proven slice carries for one PC label."""

    label: str
    width: int
    carries: Mapping[int, int]      # boundary j -> carry bit (0/1)
    sites: int                      # adder sites merged into this fact
    line: int                       # first contributing source line


def site_label(fn_name: str, site: AdderSite) -> Optional[str]:
    """The PC label this site interns at runtime, or None when a
    dynamic ``k.inline`` tag makes it unknowable."""
    if any(s is None for s in site.scopes):
        return None
    prefix = "/".join(s for s in site.scopes if s is not None)
    if site.kind == "loop-inc":
        tag = f"{prefix}|loop-inc" if prefix else "loop-inc"
    else:
        tag = prefix
    label = f"{fn_name}:{site.lineno}"
    if tag:
        label += f"#{tag}"
    return label


def _invert32(b: AbsVal) -> AbsVal:
    """Adder-domain second operand of isub/imin/imax:
    ``(2**32 - 1) ^ b`` for ``b`` proven inside ``[0, 2**32)``."""
    lo = _MASK32 - b.interval.hi  # type: ignore[operator]
    hi = _MASK32 - b.interval.lo  # type: ignore[operator]
    bits = b.all_bits()
    mask = (bits.mask & _MASK32) | _HIGH_MASK
    value = (~bits.value) & bits.mask & _MASK32
    return AbsVal(Interval(lo, hi), KnownBits(mask, value),
                  b.uniform)


def _adder_domain(site: AdderSite
                  ) -> Optional[Tuple[AbsVal, AbsVal, int]]:
    """Map a site's abstract operands into the recorded unsigned-32
    adder domain; None when ``to_unsigned`` cannot be proven to be the
    identity (possible negatives / overflow)."""
    a, b = site.op_a, site.op_b
    if not a.interval.within(0, _MASK32):
        return None
    if not b.interval.within(0, _MASK32):
        return None
    if site.kind in ("iadd", "loop-inc"):
        return a, b, 0
    if site.kind in ("isub", "imin", "imax"):
        return a, _invert32(b), 1
    return None


def _ripple_carry(a: KnownBits, b: KnownBits, cin: int,
                  m: int) -> Optional[int]:
    """Carry into bit position ``m`` from a known-bits carry chain.

    Per column: two known bits resolve the column exactly (0+0 kills
    any carry, 1+1 generates one, mixed propagates); one known bit can
    still absorb (known 0, carry 0) or generate (known 1, carry 1).
    """
    carry: Optional[int] = cin
    for i in range(m):
        ba, bb = a.bit(i), b.bit(i)
        if ba is not None and bb is not None:
            s = ba + bb
            if s == 0:
                carry = 0
            elif s == 2:
                carry = 1
            # s == 1: carry propagates unchanged
        elif ba == 0 or bb == 0:
            carry = 0 if carry == 0 else None
        elif ba == 1 or bb == 1:
            carry = 1 if carry == 1 else None
        else:
            carry = None
    return carry


def site_carries(site: AdderSite) -> Optional[Dict[int, int]]:
    """Pinned boundary carries for one adder site.

    ``None`` marks an ineligible site (unknown label domain / operand
    ranges): it poisons its label during merging, because trace rows
    at that label would not be covered by the proof.
    """
    dom = _adder_domain(site)
    if dom is None:
        return None
    a, b, cin = dom
    abits, bbits = a.all_bits(), b.all_bits()
    out: Dict[int, int] = {}
    for j in range(N_BOUNDARIES):
        m = SLICE_BITS * (j + 1)
        lim = 1 << m
        carry: Optional[int] = None
        ah, bh = a.interval.hi, b.interval.hi
        al, bl = a.interval.lo, b.interval.lo
        if ah is not None and bh is not None \
                and ah + bh + cin < lim:
            carry = 0
        elif al is not None and bl is not None \
                and al + bl + cin >= lim \
                and ah is not None and ah < lim \
                and bh is not None and bh < lim:
            carry = 1
        ripple = _ripple_carry(abits, bbits, cin, m)
        if carry is None:
            carry = ripple
        elif ripple is not None and ripple != carry:
            # two sound proofs can never disagree; drop defensively
            carry = None
        if carry is not None:
            out[j] = carry
    return out


def function_facts(summary: FunctionSummary) -> Dict[str, CarryFact]:
    """Merged per-label facts for one function summary."""
    if summary.bailed:
        return {}
    by_label: Dict[str, List[Tuple[AdderSite,
                                   Optional[Dict[int, int]]]]] = {}
    for site in summary.adder_sites:
        label = site_label(summary.name, site)
        if label is None:
            continue
        by_label.setdefault(label, []).append(
            (site, site_carries(site)))
    out: Dict[str, CarryFact] = {}
    for label, entries in by_label.items():
        carries_list = [c for _, c in entries]
        if any(c is None for c in carries_list):
            continue
        merged: Dict[int, int] = {}
        for j in range(N_BOUNDARIES):
            vals = {c[j] for c in carries_list  # type: ignore[index]
                    if c is not None and j in c}
            if len(vals) == 1 and all(
                    c is not None and j in c for c in carries_list):
                merged[j] = vals.pop()
        if not merged:
            continue
        out[label] = CarryFact(
            label=label, width=WIDTH, carries=merged,
            sites=len(entries),
            line=min(s.lineno for s, _ in entries))
    return out


def module_facts_from_source(src: str, path: str = "<string>"
                             ) -> Dict[str, CarryFact]:
    """Facts for every kernel function of one module source."""
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return {}
    out: Dict[str, CarryFact] = {}
    for summary in analyze_module(tree, path).values():
        out.update(function_facts(summary))
    return out


def module_bails_from_source(src: str, path: str = "<string>"
                             ) -> Dict[str, Dict[str, object]]:
    """Per-function bail records of one module source.

    ``{function: {"bail_reason": ..., "line": ...}}`` for every kernel
    function whose abstract interpretation bailed.  The reason is the
    :class:`~repro.lint.ir.LoweringError` message, which names the
    offending construct and its location — a bailed function exports
    no facts, and this record says *why*.
    """
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return {}
    return {
        name: {"bail_reason": summary.reason, "line": summary.lineno}
        for name, summary in sorted(analyze_module(tree, path).items())
        if summary.bailed
    }


def facts_to_json(facts: Mapping[str, CarryFact]) -> Dict[str, dict]:
    """JSON-serialisable form of a fact table (sorted, stable)."""
    return {
        label: {
            "width": f.width,
            "carries": {str(j): f.carries[j]
                        for j in sorted(f.carries)},
            "sites": f.sites,
            "line": f.line,
        }
        for label, f in sorted(facts.items())
    }


def collect_facts_payload(paths) -> Dict[str, object]:
    """The ``st2-lint facts --json`` / ``--fact-dump`` document.

    Walks files and directories, analyses every ``*.py`` module and
    returns the versioned, sorted, JSON-serialisable fact table —
    byte-stable for fixed inputs (the golden-file contract external
    consumers and the fuzzer's static-facts oracle rely on).
    Unreadable files are skipped; unparsable ones export no facts.

    Bailed functions appear under the separate ``bails`` section
    (``{module: {function: {"bail_reason", "line"}}}``), never inside
    the fact records themselves: a bail exports no facts, only the
    LoweringError message explaining which construct stopped the
    analysis.
    """
    from pathlib import Path

    files = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    modules: Dict[str, Dict[str, dict]] = {}
    bails: Dict[str, Dict[str, Dict[str, object]]] = {}
    n_facts = n_bits = 0
    for file in sorted(set(files), key=str):
        try:
            src = file.read_text()
        except OSError:
            continue
        facts = module_facts_from_source(src, str(file))
        fn_bails = module_bails_from_source(src, str(file))
        if facts:
            modules[str(file)] = facts_to_json(facts)
            n_facts += len(facts)
            n_bits += sum(len(f.carries) for f in facts.values())
        if fn_bails:
            bails[str(file)] = fn_bails
    return {"version": 1, "facts": n_facts, "pinned_carries": n_bits,
            "bailed": sum(len(b) for b in bails.values()),
            "bails": bails, "modules": modules}


# ----------------------------------------------------------------------
# kernel-suite resolution (for the simulator / runner)
# ----------------------------------------------------------------------

_MODULE_CACHE: Dict[str, Dict[str, CarryFact]] = {}


def facts_for_module(path: str) -> Dict[str, CarryFact]:
    """Facts for one kernel module file (memoised per path)."""
    cached = _MODULE_CACHE.get(path)
    if cached is None:
        try:
            with open(path, "r") as fh:
                src = fh.read()
        except OSError:
            cached = {}
        else:
            cached = module_facts_from_source(src, path)
        _MODULE_CACHE[path] = cached
    return cached


def facts_for_kernel(kernel_name: str) -> Dict[str, CarryFact]:
    """Static carry facts for a named suite kernel.

    Resolves the kernel's defining module through the suite registry
    (prepare functions live in the same module as their kernel
    functions) and analyses the whole module — helper functions called
    by the kernel are covered because their PC labels carry their own
    function names.
    """
    import inspect

    from repro.kernels.suite import spec_by_name

    try:
        spec = spec_by_name(kernel_name)
    except KeyError:
        return {}
    module = inspect.getmodule(spec.prepare)
    if module is None:
        return {}
    try:
        path = inspect.getsourcefile(module)
    except TypeError:
        return {}
    if not path:
        return {}
    return facts_for_module(path)


__all__ = [
    "CarryFact", "N_BOUNDARIES", "SLICE_BITS", "WIDTH",
    "collect_facts_payload",
    "facts_for_kernel", "facts_for_module", "facts_to_json",
    "function_facts", "module_bails_from_source", "module_constants",
    "module_facts_from_source",
    "site_carries", "site_label",
]
