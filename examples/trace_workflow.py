#!/usr/bin/env python
"""Trace-driven workflow: capture once, explore many times.

Design-space sweeps re-analyse the same execution over and over; this
example captures a kernel's trace once, reloads it, and shows that
every study reproduces bit-for-bit from the file — the same decoupling
GPGPU-Sim users get from PTX trace files.  Two persistence layers are
shown:

* ``repro.sim.trace_io`` — a single compressed ``.npz`` archive, good
  for shipping one trace around;
* ``repro.sim.trace_store`` — the content-addressed store behind
  ``st2-run --trace-store``: raw per-column ``.npy`` files opened as
  read-only memory maps, so any number of processes share one copy via
  the OS page cache.

Run:  python examples/trace_workflow.py
"""

import tempfile
import time
from pathlib import Path

from repro.core.predictors import run_speculation
from repro.core.speculation import DESIGN_LADDER, ST2_DESIGN
from repro.kernels.suite import spec_by_name
from repro.sim.trace_io import load_trace, save_kernel_run
from repro.sim.trace_store import TraceStore, trace_key


def main() -> None:
    # -- capture -----------------------------------------------------------
    t0 = time.time()
    run = spec_by_name("msort_K2").run(scale=1.0, seed=0)
    capture_s = time.time() - t0
    print(f"captured msort_K2: {len(run.trace):,} adder ops in "
          f"{capture_s:.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "msort_K2.npz"
        save_kernel_run(path, run, {"scale": 1.0, "seed": 0})
        print(f"persisted to {path.name}: "
              f"{path.stat().st_size / 1024:.0f} kB compressed")

        # -- reload and re-analyse ----------------------------------------
        bundle = load_trace(path)
        print(f"reloaded: kernel={bundle.metadata['kernel']} "
              f"({bundle.metadata['n_static_pcs']} static PCs)")

        t0 = time.time()
        fresh = run_speculation(run.trace, ST2_DESIGN)
        loaded = run_speculation(bundle.trace, ST2_DESIGN)
        assert fresh.thread_misprediction_rate \
            == loaded.thread_misprediction_rate
        print(f"ST2 misprediction from file: "
              f"{loaded.thread_misprediction_rate:.2%} "
              "(bit-identical to the live trace)")

        # a full ladder sweep costs only analysis time now
        for config in DESIGN_LADDER[:4]:
            rate = run_speculation(
                bundle.trace, config).thread_misprediction_rate
            print(f"  {config.name:18s} {rate:6.1%}")
        print(f"ladder exploration from file: {time.time() - t0:.2f}s "
              "(no re-execution)")

        # -- the shared, memory-mapped store ------------------------------
        store = TraceStore(Path(tmp) / "traces")
        key = trace_key("msort_K2", 1.0, 0, "example")
        store.put(key, run, code_version="example", scale=1.0, seed=0)
        stored = store.get(key)       # read-only memmaps, zero-copy
        mapped = run_speculation(stored.trace, ST2_DESIGN)
        assert mapped.thread_misprediction_rate \
            == fresh.thread_misprediction_rate
        print(f"store entry {key[:12]}: {store.nbytes(key) / 1024:.0f} kB "
              f"on disk, memmap analysis bit-identical "
              f"({mapped.thread_misprediction_rate:.2%})")


if __name__ == "__main__":
    main()
