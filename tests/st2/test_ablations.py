"""Ablation machinery: depth, contention, slice width."""

import pytest

from repro.core.speculation import ST2_DESIGN
from repro.kernels import pathfinder
from repro.st2.ablations import (contention_sweep, history_depth_sweep,
                                 slice_width_speculation_sweep)


@pytest.fixture(scope="module")
def trace():
    return pathfinder.prepare(scale=0.3, seed=0).run().trace


class TestHistoryDepth:
    def test_depth_one_matches_prev(self, trace):
        """Depth-1 majority is exactly the Prev mechanism."""
        from repro.core.predictors import run_speculation
        points = history_depth_sweep(trace, depths=(1,))
        direct = run_speculation(trace, ST2_DESIGN)
        assert points[0].misprediction_rate == pytest.approx(
            direct.thread_misprediction_rate, abs=1e-9)

    def test_returns_requested_depths(self, trace):
        points = history_depth_sweep(trace, depths=(1, 3))
        assert [p.depth for p in points] == [1, 3]

    def test_rates_are_probabilities(self, trace):
        for p in history_depth_sweep(trace):
            assert 0.0 <= p.misprediction_rate <= 1.0

    def test_deeper_history_no_large_win(self, trace):
        """The paper's implicit claim: last-carry history suffices."""
        points = history_depth_sweep(trace, depths=(1, 2, 3, 4))
        best = min(p.misprediction_rate for p in points)
        assert points[0].misprediction_rate <= best + 0.03


class TestContention:
    def test_contention_never_helps(self, trace):
        res = contention_sweep(trace)
        assert res.contended_rate >= res.ideal_rate - 0.01
        assert 0.0 <= res.updates_dropped_fraction <= 1.0

    def test_wide_writeback_increases_conflicts(self, trace):
        narrow = contention_sweep(trace, writeback_width=1)
        wide = contention_sweep(trace, writeback_width=8)
        assert wide.updates_dropped_fraction \
            >= narrow.updates_dropped_fraction
        # width-1 write-back can never conflict
        assert narrow.updates_dropped_fraction == 0.0
        assert narrow.contended_rate == pytest.approx(
            narrow.ideal_rate, abs=0.02)

    def test_penalty_is_small(self, trace):
        """Section IV-B: random arbitration practically suffices."""
        res = contention_sweep(trace, writeback_width=4)
        assert res.rate_penalty < 0.05

    def test_deterministic_given_seed(self, trace):
        a = contention_sweep(trace, seed=5)
        b = contention_sweep(trace, seed=5)
        assert a.contended_rate == b.contended_rate


class TestSliceWidth:
    def test_boundary_counts(self, trace):
        points = slice_width_speculation_sweep(trace, widths=(4, 8, 16))
        assert [p.boundaries_per_64bit_op for p in points] == [15, 7, 3]

    def test_wider_slices_mispredict_less(self, trace):
        points = slice_width_speculation_sweep(trace, widths=(4, 8, 16))
        rates = [p.misprediction_rate for p in points]
        assert rates[0] >= rates[1] >= rates[2] - 0.01

    def test_eight_bit_matches_main_path(self, trace):
        """The sweep at 8 bits must agree with the primary machinery."""
        from repro.core.predictors import run_speculation
        point = slice_width_speculation_sweep(trace, widths=(8,))[0]
        direct = run_speculation(trace, ST2_DESIGN)
        assert point.misprediction_rate == pytest.approx(
            direct.thread_misprediction_rate, abs=0.02)
