"""Power model stack: activity, Eq. (1), silicon, stressors."""

import numpy as np
import pytest

from repro.kernels import pathfinder
from repro.power.activity import ActivityVector, activity_from_run
from repro.power.components import (CHIP_COMPONENTS, MODEL_ALU_SUBTYPE_PJ,
                                    Component)
from repro.power.hardware import (TRUE_P_CONST_W, TRUE_P_IDLE_SM_W,
                                  SyntheticSilicon)
from repro.power.microbench import build_microbenchmarks
from repro.power.model import GPUPowerModel
from repro.sim.pipeline import simulate_sm


@pytest.fixture(scope="module")
def small_activity():
    run = pathfinder.prepare(scale=0.3, seed=0).run()
    timing = simulate_sm(run.insts, run.launch)
    return activity_from_run(run, timing)


class TestActivityVector:
    def test_components_populated(self, small_activity):
        a = small_activity
        assert a.counts[Component.ALU_FPU] > 0
        assert a.counts[Component.REGFILE] > 0
        assert a.counts[Component.CACHES_MC] > 0
        assert a.counts[Component.OTHERS] > 0
        assert a.duration_s > 0

    def test_fine_counts_sum_into_component(self, small_activity):
        a = small_activity
        fine_total = (a.fine["alu_add"] + a.fine["alu_other"]
                      + a.fine["fpu_add"] + a.fine["fpu_other"]
                      + a.fine["dpu_add"])
        assert fine_total == pytest.approx(a.counts[Component.ALU_FPU])

    def test_full_chip_scaling_occupies_all_sms(self, small_activity):
        assert small_activity.n_active_sms == 80
        assert small_activity.n_idle_sms == 0

    def test_scaled(self, small_activity):
        double = small_activity.scaled(2.0)
        assert double.counts[Component.ALU_FPU] == pytest.approx(
            2 * small_activity.counts[Component.ALU_FPU])
        assert double.duration_s == small_activity.duration_s

    def test_dram_below_l2(self, small_activity):
        assert small_activity.counts[Component.DRAM] \
            < small_activity.counts[Component.CACHES_MC]


class TestPowerModel:
    def test_eq1_structure(self):
        model = GPUPowerModel()
        act = ActivityVector("idle", {c: 0.0 for c in Component},
                             duration_s=1.0, n_active_sms=0)
        expect = model.p_const_w + 80 * model.p_idle_sm_w
        assert model.total_power_w(act) == pytest.approx(expect)

    def test_power_monotone_in_activity(self, small_activity):
        model = GPUPowerModel()
        p1 = model.total_power_w(small_activity)
        p2 = model.total_power_w(small_activity.scaled(2.0))
        assert p2 > p1

    def test_alu_subtype_model_prefers_adds(self):
        assert MODEL_ALU_SUBTYPE_PJ["alu_add"] \
            > MODEL_ALU_SUBTYPE_PJ["alu_other"]

    def test_component_energy_sums_to_dynamic(self, small_activity):
        model = GPUPowerModel()
        comp = model.component_energy_j(small_activity)
        total = model.total_energy_j(small_activity)
        static = model.static_energy_j(small_activity)
        assert sum(comp.values()) + static == pytest.approx(total)

    def test_chip_components_exclude_dram(self):
        assert Component.DRAM not in CHIP_COMPONENTS
        assert Component.ALU_FPU in CHIP_COMPONENTS


class TestSyntheticSilicon:
    def test_truth_above_static_floor(self, small_activity):
        sil = SyntheticSilicon(seed=1)
        assert sil.true_power_w(small_activity) > TRUE_P_CONST_W

    def test_idle_sms_add_power(self):
        sil = SyntheticSilicon(seed=1)
        base = ActivityVector("x", {c: 0.0 for c in Component},
                              duration_s=1.0, n_active_sms=80)
        idle = ActivityVector("x", {c: 0.0 for c in Component},
                              duration_s=1.0, n_active_sms=0)
        assert sil.true_power_w(idle) - sil.true_power_w(base) \
            == pytest.approx(80 * TRUE_P_IDLE_SM_W)

    def test_measurement_noisy_but_unbiased(self, small_activity):
        sil = SyntheticSilicon(seed=2)
        truth = sil.true_power_w(small_activity)
        samples = [sil.measure_w(small_activity) for _ in range(50)]
        assert abs(np.mean(samples) - truth) < 0.05 * truth
        assert np.std(samples) > 0

    def test_sampling_rate_window(self, small_activity):
        sil = SyntheticSilicon(seed=3)
        assert sil.samples_for(small_activity, rate_hz=75.0) \
            == int(small_activity.duration_s * 75)


class TestMicrobenchmarks:
    def test_exactly_123(self):
        assert len(build_microbenchmarks()) == 123

    def test_stressors_emphasise_their_component(self):
        model = GPUPowerModel()
        for mb in build_microbenchmarks()[:108:12]:
            strongest = max(
                Component,
                key=lambda c: model.raw_component_power_w(mb, c)
                * (0 if c is Component.OTHERS else 1))
            assert strongest in Component
            assert mb.name.startswith("stress_"), mb.name

    def test_occupancy_sweep_varies_idle_sms(self):
        mbs = build_microbenchmarks()
        occ = [m for m in mbs if "occupancy" in m.name]
        assert len(occ) == 15
        assert len({m.n_idle_sms for m in occ}) > 10

    def test_variants_break_regfile_collinearity(self):
        mbs = [m for m in build_microbenchmarks()
               if m.name.startswith("stress_alu_fpu")]
        ratios = {round(m.counts[Component.REGFILE]
                        / m.counts[Component.ALU_FPU], 2) for m in mbs}
        assert len(ratios) >= 3
