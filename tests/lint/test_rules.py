"""Per-rule fixture kernels: each L1–L5 fires on its fixture and stays
quiet on the corrected twin."""

import textwrap

from repro.lint import RULES
from repro.lint.analyzer import lint_source


def lint(src, **kw):
    kw.setdefault("hashed", False)
    return lint_source(textwrap.dedent(src), path="fixture.py", **kw)


def rules_of(findings):
    return sorted({f.rule for f in findings if not f.suppressed})


class TestL1Untraced:
    def test_raw_add_on_device_vector(self):
        findings = lint("""
            def kernel(k, out, n):
                t = k.thread_id()
                x = t + 1
                k.st_global(out, t, x)
        """)
        assert rules_of(findings) == ["L1"]
        assert findings[0].line == 4

    def test_augmented_and_numpy_calls(self):
        findings = lint("""
            import numpy as np
            def kernel(k, out):
                t = k.thread_id()
                t += 4
                y = np.add(t, 1)
                k.st_global(out, t, y)
        """)
        assert [f.rule for f in findings] == ["L1", "L1"]

    def test_taint_propagates_through_assignment(self):
        findings = lint("""
            def kernel(k, out):
                a = k.iadd(k.thread_id(), 1)
                b = a
                c = b - 7
                k.st_global(out, b, c)
        """)
        assert rules_of(findings) == ["L1"]

    def test_scalar_math_is_clean(self):
        findings = lint("""
            def kernel(k, out, n):
                lo = max(1, 2 * n - 4)
                hi = n - 1 + lo
                t = k.iadd(k.thread_id(), lo)
                k.st_global(out, t, hi)
        """)
        assert findings == []

    def test_dsl_arithmetic_is_clean(self):
        findings = lint("""
            def kernel(k, out):
                t = k.thread_id()
                x = k.iadd(t, 1)
                y = k.isub(x, t)
                k.st_global(out, t, y)
        """)
        assert findings == []

    def test_loop_carried_taint(self):
        """Fixpoint: a variable assigned from a device call inside a
        loop taints its use earlier in the loop body too."""
        findings = lint("""
            def kernel(k, out, n):
                child = 0
                for _ in k.range(n):
                    probe = child + 1
                    child = k.ld_global(out, probe)
        """)
        assert rules_of(findings) == ["L1"]


class TestL2PcAliasing:
    HELPER = """
        def descend(k, node, key):
            step = k.iadd(node, 1)
            return k.ld_global(key, step)
    """

    def test_double_call_site_flagged(self):
        findings = lint(self.HELPER + """
            def kernel(k, keys, out):
                a = descend(k, k.thread_id(), keys)
                b = descend(k, a, keys)
                k.st_global(out, a, b)
        """)
        assert [f.rule for f in findings] == ["L2", "L2"]

    def test_inline_scopes_silence_it(self):
        findings = lint(self.HELPER + """
            def kernel(k, keys, out):
                with k.inline("lo"):
                    a = descend(k, k.thread_id(), keys)
                with k.inline("hi"):
                    b = descend(k, a, keys)
                k.st_global(out, a, b)
        """)
        assert findings == []

    def test_single_call_in_rolled_loop_is_clean(self):
        """A rolled loop re-executes one static call site — that is
        faithful hardware behaviour, not aliasing."""
        findings = lint(self.HELPER + """
            def kernel(k, keys, out, height):
                node = k.thread_id()
                for _ in k.range(height):
                    node = descend(k, node, keys)
                k.st_global(out, node, node)
        """)
        assert findings == []

    def test_non_emitting_helper_is_clean(self):
        findings = lint("""
            def classify(k, key):
                return k.lt(key, 10)

            def kernel(k, keys, out):
                a = classify(k, k.ld_global(keys, k.thread_id()))
                b = classify(k, a)
                k.st_global(out, a, b)
        """)
        assert findings == []

    def test_transitive_emission_detected(self):
        findings = lint("""
            def inner(k, x):
                return k.iadd(x, 1)

            def outer(k, x):
                return inner(k, x)

            def kernel(k, out):
                a = outer(k, k.thread_id())
                b = outer(k, a)
                k.st_global(out, a, b)
        """)
        assert [f.rule for f in findings] == ["L2", "L2"]


class TestL3SharedMemoryOrdering:
    def test_cross_index_load_without_barrier(self):
        findings = lint("""
            import numpy as np
            def kernel(k, out):
                t = k.thread_id()
                s = k.shared(64, np.int64)
                k.st_shared(s, t, t)
                v = k.ld_shared(s, k.isub(63, t))
                k.st_global(out, t, v)
        """)
        assert rules_of(findings) == ["L3"]

    def test_barrier_clears_pending_stores(self):
        findings = lint("""
            import numpy as np
            def kernel(k, out):
                t = k.thread_id()
                s = k.shared(64, np.int64)
                k.st_shared(s, t, t)
                k.syncthreads()
                v = k.ld_shared(s, k.isub(63, t))
                k.st_global(out, t, v)
        """)
        assert findings == []

    def test_same_index_scratch_is_clean(self):
        """The per-thread scratch / histogram-counter idiom: a thread
        reloading exactly what it stored needs no barrier."""
        findings = lint("""
            import numpy as np
            def kernel(k, data, out, n):
                t = k.thread_id()
                slot = k.irem(t, np.int64(16))
                s = k.shared(16, np.int64)
                k.atomic_add_shared(s, slot, 1)
                v = k.ld_shared(s, slot)
                k.st_global(out, t, v)
        """)
        assert findings == []

    def test_loop_wraparound_hazard(self):
        """A store at the bottom of a loop races with the next
        iteration's load at the top (no barrier between them)."""
        findings = lint("""
            import numpy as np
            def kernel(k, out, n):
                t = k.thread_id()
                s = k.shared(64, np.int64)
                for _ in k.range(n):
                    v = k.ld_shared(s, k.isub(63, t))
                    k.st_shared(s, t, v)
        """)
        assert rules_of(findings) == ["L3"]


class TestL4BarrierDivergence:
    def test_barrier_under_where(self):
        findings = lint("""
            def kernel(k, out):
                t = k.thread_id()
                with k.where(k.lt(t, 16)):
                    k.syncthreads()
        """)
        # thread-id mask divergence is reachable: the syntactic L4 and
        # its flow-sensitive confirmation L7 both fire
        assert rules_of(findings) == ["L4", "L7"]

    def test_top_level_barrier_is_clean(self):
        findings = lint("""
            def kernel(k, out):
                t = k.thread_id()
                with k.where(k.lt(t, 16)):
                    k.st_global(out, t, t)
                k.syncthreads()
        """)
        assert findings == []


class TestL5Nondeterminism:
    def test_unseeded_rng_and_clock_in_hashed_module(self):
        findings = lint("""
            import time
            import numpy as np

            def jitter():
                rng = np.random.default_rng()
                return rng.random() + time.time()
        """, hashed=True)
        assert [f.rule for f in findings] == ["L5", "L5"]

    def test_seeded_rng_is_clean(self):
        findings = lint("""
            import numpy as np

            def stream(seed):
                rng = np.random.default_rng(seed)
                return rng.random(8)
        """, hashed=True)
        assert findings == []

    def test_unhashed_module_not_checked(self):
        findings = lint("""
            import time

            def stamp():
                return time.time()
        """, hashed=False)
        assert findings == []

    def test_legacy_global_rng_and_stdlib_random(self):
        findings = lint("""
            import random
            import numpy as np

            def noise(n):
                base = np.random.rand(n)
                return base + random.random()
        """, hashed=True)
        assert [f.rule for f in findings] == ["L5", "L5"]


class TestAnalyzerFrontEnd:
    def test_syntax_error_yields_e0(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == ["E0"]

    def test_suppression_marks_finding(self):
        findings = lint("""
            def kernel(k, out):
                t = k.thread_id()
                x = t + 1  # st2-lint: disable=L1 — fixture
                k.st_global(out, t, x)
        """)
        assert len(findings) == 1 and findings[0].suppressed

    def test_rule_subset_filter(self):
        src = """
            def kernel(k, out):
                t = k.thread_id()
                x = t + 1
                with k.where(k.lt(t, 8)):
                    k.syncthreads()
        """
        assert rules_of(lint(src)) == ["L1", "L4", "L7"]
        assert rules_of(lint(src, rules=("L4",))) == ["L4"]
        assert rules_of(lint(src, rules=("L7",))) == ["L7"]

    def test_non_kernel_functions_ignored(self):
        findings = lint("""
            def prepare(scale, seed):
                n = scale + seed
                return n + 1
        """)
        assert findings == []

    def test_rule_table_covers_all_rules(self):
        assert set(RULES) == {"L1", "L2", "L3", "L4", "L5",
                              "L6", "L7", "L8", "L9", "L10", "E0"}
