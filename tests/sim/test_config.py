"""GPU and launch configuration invariants."""

import pytest

from repro.sim.config import LaunchConfig, TITAN_V


class TestTitanV:
    def test_paper_section_2_parameters(self):
        assert TITAN_V.n_sms == 80
        assert TITAN_V.alus_per_sm == 64
        assert TITAN_V.fpus_per_sm == 64
        assert TITAN_V.dpus_per_sm == 32
        assert TITAN_V.sfus_per_sm == 4
        assert TITAN_V.warp_size == 32
        assert TITAN_V.max_threads_per_sm == 2048

    def test_crf_is_448_bytes_per_sm(self):
        """Section VI: 16 x 224 bits = 448 B per SM."""
        assert TITAN_V.crf_bytes_per_sm() == 448

    def test_chip_area(self):
        assert TITAN_V.chip_area_mm2 == pytest.approx(815.0)

    def test_warps_per_block(self):
        assert TITAN_V.warps_per_block(128) == 4
        assert TITAN_V.warps_per_block(100) == 4


class TestLaunchConfig:
    def test_valid(self):
        lc = LaunchConfig(4, 128)
        assert lc.total_threads == 512

    def test_block_must_be_warp_multiple(self):
        with pytest.raises(ValueError):
            LaunchConfig(4, 100)

    def test_grid_must_be_positive(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 128)
