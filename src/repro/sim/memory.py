"""Device memory objects and access statistics.

The power model needs memory activity (register file, shared memory,
caches, NoC, DRAM); the DSL funnels every load/store through here.  A
simple coalescing model counts 32-byte sectors touched per warp access,
which determines L2/DRAM traffic the way GPGPU-Sim's interconnect model
would.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

#: Synthetic base of the global-memory address space (value is arbitrary
#: but realistic: a 47-bit canonical pointer, so address arithmetic
#: exercises high adder slices the way real pointers do).
GLOBAL_BASE = 0x7F40_0000_0000
SHARED_BASE = 0x0100_0000
SECTOR_BYTES = 32


class DeviceBuffer:
    """A named global-memory array with a synthetic base address."""

    def __init__(self, name: str, data: np.ndarray, base: int):
        self.name = name
        self.data = data
        self.base = base

    def __len__(self) -> int:
        return self.data.size

    @property
    def itemsize(self) -> int:
        return self.data.itemsize

    def byte_offsets(self, idx: np.ndarray) -> np.ndarray:
        return idx.astype(np.int64) * self.itemsize


class Allocator:
    """Assigns synthetic base addresses to buffers.

    Like ``cudaMalloc``, bases are 256-byte aligned but otherwise
    arbitrary: a deterministic per-name jitter scatters the higher
    address bits, so the carry behaviour of address arithmetic is
    buffer-dependent (spatially correlated per PC) instead of trivially
    carry-free — important for the Figure 3/5 studies.
    """

    def __init__(self, base: int = GLOBAL_BASE, align: int = 256):
        self._next = base
        self._align = align

    def alloc(self, name: str, data: np.ndarray) -> DeviceBuffer:
        jitter = (zlib.crc32(name.encode()) % 4096) * self._align
        base = self._next + jitter
        buf = DeviceBuffer(name, data, base)
        nbytes = data.size * data.itemsize
        self._next = base + \
            (nbytes + self._align - 1) // self._align * self._align
        return buf


@dataclass
class MemoryStats:
    """Thread- and transaction-level memory activity counters."""

    global_loads: int = 0          # thread-level
    global_stores: int = 0
    global_load_transactions: int = 0   # 32B sectors
    global_store_transactions: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    const_loads: int = 0
    #: when enabled, per-access sector-address batches are retained so
    #: a cache model (:mod:`repro.sim.cache`) can replay them
    record_streams: bool = False
    address_batches: list = field(default_factory=list)

    def record_global(self, addrs: np.ndarray, warp_of: np.ndarray,
                      is_store: bool) -> None:
        """Account one warp-divergent global access.

        ``addrs`` are the active lanes' byte addresses, ``warp_of`` the
        owning warp of each lane (within the block); sectors are counted
        per warp, modelling intra-warp coalescing.
        """
        n = len(addrs)
        if n == 0:
            return
        sectors = addrs // SECTOR_BYTES
        # distinct (warp, sector) pairs
        key = warp_of.astype(np.int64) * (1 << 48) + sectors
        n_tx = len(np.unique(key))
        if is_store:
            self.global_stores += n
            self.global_store_transactions += n_tx
        else:
            self.global_loads += n
            self.global_load_transactions += n_tx
        if self.record_streams:
            self.address_batches.append(
                np.unique(sectors) * SECTOR_BYTES)

    def merge(self, other: "MemoryStats") -> None:
        self.address_batches.extend(other.address_batches)
        self.global_loads += other.global_loads
        self.global_stores += other.global_stores
        self.global_load_transactions += other.global_load_transactions
        self.global_store_transactions += other.global_store_transactions
        self.shared_loads += other.shared_loads
        self.shared_stores += other.shared_stores
        self.const_loads += other.const_loads
