"""Abstract domains + fixpoint engine (repro.lint.absint).

Domain algebra is tested directly; engine behaviour (branch pruning,
comparison refinement, divergence verdicts, bail-outs) through
:func:`analyze_source` on small inline kernels.
"""

import ast
import textwrap

from repro.lint.absint import (analyze_source, module_constants)
from repro.lint.domains import (AbsVal, Interval, av_add, av_cmp,
                                av_min, av_mod, av_shl,
                                bits_from_const, const_val, refine_cmp)


def analyze(src):
    return analyze_source(textwrap.dedent(src), "<test>")


class TestInterval:
    def test_join_widens_bounds(self):
        assert Interval(0, 3).join(Interval(2, 9)) == Interval(0, 9)
        assert Interval(0, 3).join(Interval(None, 9)) == \
            Interval(None, 9)

    def test_widen_jumps_moving_bound_to_infinity(self):
        assert Interval(0, 3).widen(Interval(0, 5)) == Interval(0, None)
        assert Interval(0, 3).widen(Interval(-1, 3)) == \
            Interval(None, 3)
        # stable bounds survive
        assert Interval(0, 3).widen(Interval(1, 2)) == Interval(0, 3)

    def test_meet_and_empty(self):
        assert Interval(0, 10).meet(Interval(4, None)) == Interval(4, 10)
        assert Interval(0, 3).meet(Interval(5, 9)).is_empty()

    def test_within(self):
        assert Interval(0, 255).within(0, 2**32 - 1)
        assert not Interval(-1, 3).within(0, 2**32 - 1)
        assert not Interval(None, 3).within(0, 2**32 - 1)


class TestKnownBits:
    def test_join_keeps_agreeing_bits(self):
        a = bits_from_const(0b1100)
        b = bits_from_const(0b1010)
        j = a.join(b)
        assert j.bit(3) == 1          # both have bit 3 set
        assert j.bit(0) == 0          # both have bit 0 clear
        assert j.bit(1) is None       # disagree
        assert j.bit(2) is None

    def test_ripple_add_exact_when_fully_known(self):
        s = av_add(const_val(1234), const_val(5678))
        assert s.interval == Interval(6912, 6912)
        assert s.bits.mask != 0 and s.bits.value == 6912 & s.bits.mask

    def test_interval_implies_high_zero_bits(self):
        bits = AbsVal(Interval(0, 7)).all_bits()
        assert bits.bit(3) == 0 and bits.bit(63) == 0
        assert bits.bit(2) is None


class TestTransfers:
    def test_mod_positive_divisor(self):
        r = av_mod(AbsVal(uniform=True), const_val(8))
        assert r.interval == Interval(0, 7)

    def test_min_uses_either_hi(self):
        r = av_min(AbsVal(Interval(0, None)), const_val(31))
        assert r.interval == Interval(0, 31)

    def test_shl_const_shift_keeps_low_zeros(self):
        r = av_shl(AbsVal(Interval(0, 15), uniform=True), const_val(4))
        assert r.interval == Interval(0, 240)
        assert r.bits.bit(0) == 0 and r.bits.bit(3) == 0

    def test_cmp_verdicts(self):
        lo = AbsVal(Interval(0, 3))
        hi = AbsVal(Interval(8, 12))
        assert av_cmp("<", lo, hi).truth() is True
        assert av_cmp(">=", lo, hi).truth() is False
        assert av_cmp("<", lo, AbsVal(Interval(2, 9))).truth() is None

    def test_refine_cmp(self):
        x = AbsVal(Interval(0, None))
        assert refine_cmp("<", x, const_val(8), True).interval == \
            Interval(0, 7)
        assert refine_cmp("<", x, const_val(8), False).interval == \
            Interval(8, None)
        # contradictory refinement keeps the original (pruning is the
        # branch's job)
        y = AbsVal(Interval(10, 20))
        assert refine_cmp("<", y, const_val(0), True).interval == \
            Interval(10, 20)


class TestModuleConstants:
    def test_folds_literals_and_arithmetic(self):
        tree = ast.parse("A = 4\nB = A * 8\nC = -2\nD = (1, 2, 3)\n")
        consts = module_constants(tree)
        assert consts["A"] == 4 and consts["B"] == 32
        assert consts["C"] == -2 and consts["D"] == (1, 2, 3)

    def test_reassignment_to_unfoldable_drops_name(self):
        tree = ast.parse("A = 4\nA = object()\n")
        assert "A" not in module_constants(tree)


class TestEngine:
    def test_branch_refines_thread_id(self):
        s = analyze("""
            def fn(k, out):
                t = k.thread_id()
                if t < 8:
                    a = k.iadd(t, 1)
                else:
                    a = k.iadd(t, 100)
                k.st_global(out, t, a)
        """)["fn"]
        assert not s.bailed
        taken, other = s.adder_sites
        assert taken.op_a.interval == Interval(0, 7)
        assert other.op_a.interval == Interval(8, None)

    def test_const_false_branch_is_pruned(self):
        s = analyze("""
            FLAG = 0

            def fn(k, out):
                t = k.thread_id()
                if FLAG:
                    k.syncthreads()
                k.st_global(out, t, t)
        """)["fn"]
        (barrier,) = s.barrier_sites
        assert not barrier.reachable and barrier.clean

    def test_params_are_divergent(self):
        # helper functions receive per-lane vectors from callers, so a
        # barrier guarded by a parameter comparison must stay suspect
        s = analyze("""
            def fn(k, out, n):
                t = k.thread_id()
                with k.where(k.lt(t, n)):
                    k.syncthreads()
        """)["fn"]
        (barrier,) = s.barrier_sites
        assert barrier.reachable and barrier.divergent
        assert not barrier.clean

    def test_uniform_where_is_clean(self):
        s = analyze("""
            def fn(k, out):
                t = k.thread_id()
                with k.where(k.lt(k.n_threads, 1024)):
                    k.syncthreads()
                k.st_global(out, t, t)
        """)["fn"]
        (barrier,) = s.barrier_sites
        assert barrier.n_conds == 1
        assert barrier.reachable and not barrier.divergent
        assert barrier.clean

    def test_decided_divergent_cond_is_clean(self):
        # per-lane value, but the comparison is decided for every lane
        s = analyze("""
            def fn(k, out):
                t = k.thread_id()
                with k.where(k.ge(t, 0)):
                    k.syncthreads()
        """)["fn"]
        (barrier,) = s.barrier_sites
        assert barrier.clean

    def test_unlowerable_construct_bails(self):
        s = analyze("""
            def fn(k, out):
                try:
                    k.syncthreads()
                except Exception:
                    pass
        """)["fn"]
        assert s.bailed and s.reason

    def test_widening_terminates_open_loop(self):
        s = analyze("""
            def fn(k, out, n):
                t = k.thread_id()
                i = 0
                acc = 0
                while i < n:
                    acc = k.iadd(acc, 3)
                    i = i + 1
                k.st_global(out, t, acc)
        """)["fn"]
        assert not s.bailed
        (site,) = [x for x in s.adder_sites if x.kind == "iadd"]
        assert site.op_a.interval.lo == 0     # widened hi, stable lo
        assert site.op_a.interval.hi is None

    def test_krange_const_bounds(self):
        s = analyze("""
            N = 16

            def fn(k, out):
                t = k.thread_id()
                acc = 0
                for i in k.range(N):
                    acc = k.iadd(acc, i)
                k.st_global(out, t, acc)
        """)["fn"]
        (inc,) = [x for x in s.adder_sites if x.kind == "loop-inc"]
        assert inc.op_a.interval == Interval(0, 15)
        assert inc.op_b.interval == Interval(1, 1)
