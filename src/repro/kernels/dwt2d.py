"""Rodinia *dwt2d* — ``dwt2d_K1`` (fdwt53, the forward 5/3 integer
lifting wavelet).

Each thread owns one pixel pair of a row segment and performs the two
lifting steps of the CDF 5/3 transform on *integer* samples:

* predict: ``d[i] -= (s[i] + s[i+1]) >> 1``
* update:  ``s[i] += (d[i-1] + d[i] + 2) >> 2``

The mix is integer-add dominated but operates on noisy image data whose
low bits are unpredictable — in the paper this kernel has the worst ST2
misprediction rate and the worst (still only 3.5 %) slowdown.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def fdwt53_kernel(k, image, low_out, high_out, width, n_pairs):
    """One horizontal 5/3 lifting pass over pixel pairs."""
    i = k.global_id()
    with k.where(k.lt(i, n_pairs)):
        even_idx = k.imul(i, 2)
        odd_idx = k.iadd(even_idx, 1)
        next_even = k.imin(k.iadd(even_idx, 2), width - 2)
        prev_odd = k.imax(k.isub(even_idx, 1), 1)

        s0 = k.ld_global(image, even_idx)
        d0 = k.ld_global(image, odd_idx)
        s1 = k.ld_global(image, next_even)
        dm1 = k.ld_global(image, prev_odd)

        # predict: d -= (s0 + s1) >> 1
        pred = k.shr(k.iadd(s0, s1), 1)
        d = k.isub(d0, pred)
        # the previous pair's detail, recomputed (border-safe approx.)
        dprev = k.isub(dm1, pred)

        # update: s += (d[-1] + d + 2) >> 2
        upd = k.shr(k.iadd(k.iadd(dprev, d), 2), 2)
        s = k.iadd(s0, upd)

        k.st_global(low_out, i, s)
        k.st_global(high_out, i, d)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """An 8-bit natural-image-like row set: smooth gradient + texture
    noise, so detail coefficients have genuinely noisy low bits."""
    rng = np.random.default_rng(seed)
    width = scaled(192, scale, minimum=32, multiple=2)
    height = scaled(96, scale, minimum=8)
    xx = np.linspace(0, 4 * np.pi, width)
    img = (110 + 70 * np.sin(xx)[None, :]
           + np.cumsum(rng.normal(0, 3, (height, width)), axis=1) * 0.3
           + rng.integers(-12, 13, (height, width)))
    image = np.clip(img, 0, 255).astype(np.int32).reshape(-1)

    n_pairs = width // 2 * height
    launcher = GridLauncher(gpu=gpu, seed=seed)
    grid = max(1, (n_pairs + BLOCK - 1) // BLOCK)
    return PreparedKernel(
        name="dwt2d_K1",
        fn=fdwt53_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            image=launcher.buffer("image", image),
            low_out=launcher.buffer("low",
                                    np.zeros(n_pairs, np.int32)),
            high_out=launcher.buffer("high",
                                     np.zeros(n_pairs, np.int32)),
            width=width, n_pairs=n_pairs),
        launcher=launcher)
