"""CUDA Samples *BinomialOptions* — ``binomial``.

Binomial option pricing: one block per option; the expiry payoffs are
rolled back through the lattice with ``v[i] = puByDf * v[i+1] +
pdByDf * v[i]`` — an FFMA + FMUL pair per node per step operating on
smoothly decaying call values (strong temporal value correlation).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def binomial_kernel(k, spots, strikes, results, n_steps, vdt, pu_by_df,
                    pd_by_df, u):
    """binomialOptionsKernel: backward induction over the price lattice."""
    tx = k.thread_id()
    spot = k.ld_const(spots, k.block_id)
    strike = k.ld_const(strikes, k.block_id)

    vals = k.shared(BLOCK + 1, np.float32)
    # expiry payoff at node tx: max(S * u^(2*tx - n) - K, 0)
    node = k.isub(k.iadd(tx, tx), BLOCK // 2)
    expo = k.fmul(vdt, k.cvt_f32(node))
    price = k.fmul(spot, k.exp(expo))
    payoff = k.fmax(k.fsub(price, strike), 0.0)
    k.st_shared(vals, tx, payoff)
    k.syncthreads()

    for step in k.range(n_steps):
        alive = k.lt(tx, BLOCK - 1 - step)
        with k.where(alive):
            lo = k.ld_shared(vals, tx)
            hi = k.ld_shared(vals, k.iadd(tx, 1))
            new = k.ffma(pu_by_df, hi, k.fmul(pd_by_df, lo))
        # barrier between reading vals[tx+1] and overwriting vals[tx]:
        # at warp boundaries the neighbour belongs to another warp, and
        # its read must land before our write (the CUDA sample syncs
        # twice per roll-back step for the same reason)
        k.syncthreads()
        with k.where(alive):
            k.st_shared(vals, tx, new)
        k.syncthreads()

    with k.where(k.eq(tx, 0)):
        k.st_global(results, k.block_id, k.ld_shared(vals, 0))


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n_options = scaled(8, scale, minimum=2)
    n_steps = scaled(48, scale, minimum=8)

    spots = rng.uniform(5, 50, n_options).astype(np.float32)
    strikes = rng.uniform(5, 50, n_options).astype(np.float32)
    r, vol, t_years = 0.06, 0.10, 1.0
    dt = t_years / n_steps
    vdt = vol * np.sqrt(dt)
    rdt = r * dt
    pu = 0.5 + 0.5 * (rdt - 0.5 * vol * vol * dt) / vdt
    df = np.exp(-rdt)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="binomial",
        fn=binomial_kernel,
        launch=LaunchConfig(n_options, BLOCK),
        params=dict(
            spots=launcher.buffer("spots", spots),
            strikes=launcher.buffer("strikes", strikes),
            results=launcher.buffer(
                "results", np.zeros(n_options, np.float32)),
            n_steps=n_steps, vdt=np.float32(2 * vdt),
            pu_by_df=np.float32(pu * df),
            pd_by_df=np.float32((1 - pu) * df), u=np.float32(np.exp(vdt))),
        launcher=launcher)
