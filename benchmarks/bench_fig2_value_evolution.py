"""Figure 2 — value evolution of the pathfinder hot-loop additions.

Paper claims: values produced by *different* PCs span hundreds to tens
of thousands (even negatives); values produced by the *same* PC across
iterations stay within a similar magnitude band.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.core.correlation import (intra_pc_value_spread,
                                    inter_pc_value_spread,
                                    value_evolution)


def test_fig2_pathfinder_value_evolution(benchmark, suite_runs,
                                         artifact_dir):
    trace = suite_runs["pathfinder"].trace
    series = benchmark(value_evolution, trace, 7)

    rows = []
    for s in series:
        lo, hi = s.magnitude_band
        rows.append((f"PC{s.pc}", s.label, len(s.values),
                     float(np.min(s.values)), float(np.max(s.values)),
                     lo, hi, float(np.mean(s.chain_lengths))))
    txt = table(
        "Figure 2: pathfinder hot-loop additions (per-PC value bands)",
        ["pc", "site", "execs", "min", "max", "|v| p10", "|v| p90",
         "avg chain"],
        rows,
        ["{}", "{}", "{}", "{:.0f}", "{:.0f}", "{:.0f}", "{:.0f}",
         "{:.1f}"])
    intra = intra_pc_value_spread(trace)
    inter = inter_pc_value_spread(trace)
    txt += (f"\n\nmedian per-PC |value| coefficient of variation: "
            f"{intra:.2f}\nall-PCs-mixed coefficient of variation: "
            f"{inter:.2f}\n(paper: same-PC values similar in magnitude,"
            " cross-PC values wildly different)")
    save_artifact(artifact_dir, "fig2_value_evolution.txt", txt)

    # shape claims
    assert len(series) == 7
    assert intra < inter, "per-PC spread must be below cross-PC spread"
    # different PCs occupy very different magnitude ranges
    maxima = [abs(np.max(s.values)) + 1 for s in series]
    assert max(maxima) / min(maxima) > 50
