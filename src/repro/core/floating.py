"""Mantissa-adder operand extraction for FP32/FP64 operations.

ST2 GPU applies speculative adders to the *mantissa* additions inside
FPUs and DPUs (23- and 52-bit adders; exponent logic is excluded,
Section IV-C).  To study carry behaviour we must therefore reconstruct
the operands the mantissa adder actually sees for a floating-point
``x + y`` (or the accumulate step of an FMA):

1. order the operands by magnitude;
2. align the smaller significand by the exponent difference;
3. on an effective subtraction (opposite signs) feed the inverted
   aligned significand with carry-in 1 — exactly the SUB path of the
   slice schematic in the paper's Figure 4.

Only the low ``width`` fraction bits (23 or 52) participate in the sliced
adder, so operands are masked to that width.  Zeros, denormals, infs and
NaNs are mapped to all-zero / saturated significands: they are rare in
the workloads and their carry behaviour is trivial.
"""

from __future__ import annotations

import numpy as np

FP32_FRAC_BITS = 23
FP64_FRAC_BITS = 52


def _decompose(bits: np.ndarray, frac_bits: int, exp_bits: int):
    """(sign, biased exponent, significand incl. hidden bit) as uint64."""
    bits = bits.astype(np.uint64)
    frac_mask = np.uint64((1 << frac_bits) - 1)
    exp_mask = np.uint64((1 << exp_bits) - 1)
    frac = bits & frac_mask
    exp = (bits >> np.uint64(frac_bits)) & exp_mask
    sign = (bits >> np.uint64(frac_bits + exp_bits)) & np.uint64(1)
    hidden = np.where(exp > 0, np.uint64(1 << frac_bits), np.uint64(0))
    return sign, exp.astype(np.int64), frac | hidden


def _adder_operands(sign_a, exp_a, sig_a, sign_b, exp_b, sig_b,
                    frac_bits: int):
    """Aligned mantissa-adder operands for a floating add.

    Returns ``(op1, op2, cin)`` in the ``frac_bits``-wide adder domain.
    """
    mag_a = (exp_a.astype(np.int64) << np.int64(frac_bits + 1)) \
        + sig_a.astype(np.int64)
    mag_b = (exp_b.astype(np.int64) << np.int64(frac_bits + 1)) \
        + sig_b.astype(np.int64)
    a_is_large = mag_a >= mag_b

    exp_l = np.where(a_is_large, exp_a, exp_b)
    exp_s = np.where(a_is_large, exp_b, exp_a)
    sig_l = np.where(a_is_large, sig_a, sig_b)
    sig_s = np.where(a_is_large, sig_b, sig_a)
    sign_l = np.where(a_is_large, sign_a, sign_b)
    sign_s = np.where(a_is_large, sign_b, sign_a)

    shift = np.clip(exp_l - exp_s, 0, 63).astype(np.uint64)
    aligned_s = sig_s >> shift

    width_mask = np.uint64((1 << frac_bits) - 1)
    op1 = sig_l & width_mask
    effective_sub = (sign_l != sign_s)
    op2_add = aligned_s & width_mask
    op2_sub = (~aligned_s) & width_mask
    op2 = np.where(effective_sub, op2_sub, op2_add)
    cin = effective_sub.astype(np.uint8)
    return op1.astype(np.uint64), op2.astype(np.uint64), cin


def fp32_add_operands(x, y):
    """Mantissa-adder operands of FP32 ``x + y`` → (op1, op2, cin)."""
    xb = np.atleast_1d(np.asarray(x, dtype=np.float32)).view(np.uint32)
    yb = np.atleast_1d(np.asarray(y, dtype=np.float32)).view(np.uint32)
    sa, ea, ma = _decompose(xb, FP32_FRAC_BITS, 8)
    sb, eb, mb = _decompose(yb, FP32_FRAC_BITS, 8)
    return _adder_operands(sa, ea, ma, sb, eb, mb, FP32_FRAC_BITS)


def fp64_add_operands(x, y):
    """Mantissa-adder operands of FP64 ``x + y`` → (op1, op2, cin)."""
    xb = np.atleast_1d(np.asarray(x, dtype=np.float64)).view(np.uint64)
    yb = np.atleast_1d(np.asarray(y, dtype=np.float64)).view(np.uint64)
    sa, ea, ma = _decompose(xb, FP64_FRAC_BITS, 11)
    sb, eb, mb = _decompose(yb, FP64_FRAC_BITS, 11)
    return _adder_operands(sa, ea, ma, sb, eb, mb, FP64_FRAC_BITS)


def fp32_fma_operands(a, b, c):
    """Mantissa-adder operands of the accumulate step of ``a*b + c``.

    The product's significand is formed in the multiplier array; the
    sliced adder only performs the accumulation, so we reconstruct the
    (truncated) product significand and align it against ``c``.
    """
    prod = np.atleast_1d(np.asarray(a, dtype=np.float32)
                         * np.asarray(b, dtype=np.float32))
    return fp32_add_operands(prod, c)


def fp64_fma_operands(a, b, c):
    """FP64 analogue of :func:`fp32_fma_operands`."""
    prod = np.atleast_1d(np.asarray(a, dtype=np.float64)
                         * np.asarray(b, dtype=np.float64))
    return fp64_add_operands(prod, c)
