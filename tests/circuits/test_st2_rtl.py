"""RTL-level ST2 adder: the Figure 4 protocol, clock by clock,
cross-validated against the behavioural model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.st2_rtl import ST2AdderRTL
from repro.core import bitops
from repro.core.adder import ST2Adder
from repro.core.slices import FP32_MANTISSA, INT32, INT64, AdderGeometry


def _predictions(rng, geo):
    return rng.integers(0, 2, geo.n_predictions).tolist()


class TestProtocol:
    def test_single_cycle_on_correct_prediction(self):
        geo = INT32
        rtl = ST2AdderRTL(geo)
        # 1 + 2: all carries zero, all-zero predictions correct
        result, cycles, recomputed = rtl.run_op(1, 2, [0, 0, 0])
        assert result == 3
        assert cycles == 1
        assert recomputed == 0

    def test_two_cycles_on_misprediction(self):
        geo = INT32
        rtl = ST2AdderRTL(geo)
        result, cycles, recomputed = rtl.run_op(1, 2, [1, 0, 0])
        assert result == 3
        assert cycles == 2
        assert recomputed == 3      # slices 1..3 all suspect

    def test_stall_signal_visible_between_cycles(self):
        rtl = ST2AdderRTL(INT32)
        rtl.start_op(1, 2, [1, 0, 0])
        rtl.clock()
        assert rtl.stall == 1       # the scoreboard sees the stall
        assert rtl.busy
        rtl.clock()
        assert rtl.stall == 0
        assert not rtl.busy

    def test_error_wires_match_prediction_mismatch(self):
        geo = AdderGeometry(24)
        rtl = ST2AdderRTL(geo)
        # 0x00FFFF + 1: slice0 generates, slice1 propagates
        rtl.start_op(0x00FFFF, 0x000001, [0, 1])
        rtl.clock()
        # E[1]: cpred[0]=0 vs cout[0]=1 -> 1; slice1 then produced
        # cout 0 (computed with wrong cin 0), so E[2]: 1 vs 0 -> 1
        assert rtl.errors == [0, 1, 1]
        rtl.clock()
        assert rtl.result == 0x010000

    def test_state_dffs_or_chain(self):
        geo = INT64
        rtl = ST2AdderRTL(geo)
        # error only at the top boundary: suspect set is slice 7 only
        a = 0x00FF_0000_0000_0000
        b = 0x0001_0000_0000_0000
        true = bitops.slice_carry_ins(np.array([a], np.uint64),
                                      np.array([b], np.uint64), 64)[0]
        preds = list(true[1:])
        preds[6] ^= 1               # corrupt the top prediction
        rtl.start_op(a, b, preds)
        rtl.clock()
        states = [s.state for s in rtl.slices]
        assert states == [0, 0, 0, 0, 0, 0, 0, 1]
        rtl.clock()
        assert rtl.result == (a + b) & ((1 << 64) - 1)

    def test_sub_via_inverted_operand(self):
        rtl = ST2AdderRTL(INT32)
        b_inv = int(bitops.invert(42, 32))
        result, __, __ = rtl.run_op(100, b_inv, [1, 1, 1], cin=1)
        assert result == 58

    def test_prediction_count_validated(self):
        with pytest.raises(ValueError):
            ST2AdderRTL(INT32).start_op(1, 2, [0])


class TestCrossValidation:
    @pytest.mark.parametrize("geo", [INT64, INT32, FP32_MANTISSA])
    def test_matches_behavioural_model(self, geo, rng):
        behavioural = ST2Adder(geo)
        rtl = ST2AdderRTL(geo)
        for _ in range(200):
            a = int(rng.integers(0, bitops.mask(geo.width),
                                 dtype=np.uint64, endpoint=True))
            b = int(rng.integers(0, bitops.mask(geo.width),
                                 dtype=np.uint64, endpoint=True))
            preds = _predictions(rng, geo)
            cin = int(rng.integers(0, 2))
            out = behavioural.add(
                np.array([a], np.uint64), np.array([b], np.uint64),
                np.array([preds], np.uint8), cin=cin)
            result, cycles, recomputed = rtl.run_op(a, b, preds, cin)
            assert result == int(out.result[0])
            assert cycles == int(out.cycles[0])
            assert recomputed == int(out.recomputed_slices[0])

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1),
           p=st.lists(st.integers(0, 1), min_size=3, max_size=3),
           cin=st.integers(0, 1))
    @settings(max_examples=150, deadline=None)
    def test_always_correct_in_at_most_two_cycles(self, a, b, p, cin):
        """The paper's central hardware claim, at RTL."""
        rtl = ST2AdderRTL(INT32)
        result, cycles, __ = rtl.run_op(a, b, p, cin)
        assert result == (a + b + cin) % (1 << 32)
        assert cycles in (1, 2)

    def test_reusable_across_operations(self, rng):
        """State DFF reset on start_op: no leakage between ops."""
        rtl = ST2AdderRTL(INT32)
        rtl.run_op(0xFFFF, 0x0001, [0, 0, 0])     # forces recompute
        result, cycles, recomputed = rtl.run_op(1, 1, [0, 0, 0])
        assert (result, cycles, recomputed) == (2, 1, 0)
