"""Robustness: the headline conclusions must not depend on the seed.

Re-runs the core design-space conclusion (ST2's ladder position) and
the Figure 3 ordering on three different workload seeds at reduced
scale; every ordering claim must hold for each seed independently.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.core.correlation import slice_carry_correlation
from repro.core.speculation import (GTID_PREV_MODPC4_PEEK,
                                    LTID_PREV_MODPC4_PEEK, VALHALLA)
from repro.core.predictors import run_speculation
from repro.kernels.suite import run_suite

SEEDS = (1, 2, 3)
SCALE = 0.35
KERNELS = ("pathfinder", "sad_K1", "kmeans_K1", "msort_K1", "dwt2d_K1",
           "sgemm", "b+tree_K1", "qrng_K2")


def _one_seed(seed):
    runs = run_suite(scale=SCALE, seed=seed, names=KERNELS,
                     use_cache=False)
    val, ltid, gtid = [], [], []
    temporal, spatial = [], []
    for name, run in runs.items():
        val.append(run_speculation(run.trace, VALHALLA)
                   .thread_misprediction_rate)
        ltid.append(run_speculation(run.trace, LTID_PREV_MODPC4_PEEK)
                    .thread_misprediction_rate)
        gtid.append(run_speculation(run.trace, GTID_PREV_MODPC4_PEEK)
                    .thread_misprediction_rate)
        rates = slice_carry_correlation(run.trace, name).match_rates
        temporal.append(rates["Prev+Gtid"])
        spatial.append(rates["Prev+FullPC+Gtid"])
    return dict(valhalla=float(np.mean(val)),
                ltid=float(np.mean(ltid)),
                gtid=float(np.mean(gtid)),
                temporal=float(np.nanmean(temporal)),
                spatial=float(np.nanmean(spatial)))


def _all_seeds():
    return {seed: _one_seed(seed) for seed in SEEDS}


def test_seed_robustness(benchmark, artifact_dir):
    results = benchmark.pedantic(_all_seeds, rounds=1, iterations=1)

    txt = table(
        f"headline orderings across seeds ({len(KERNELS)} kernels, "
        f"scale {SCALE})",
        ["seed", "VaLHALLA", "ST2 (Ltid)", "Gtid", "temporal corr",
         "spatio-temporal corr"],
        [(s, f"{r['valhalla']:.1%}", f"{r['ltid']:.1%}",
          f"{r['gtid']:.1%}", f"{r['temporal']:.1%}",
          f"{r['spatial']:.1%}") for s, r in results.items()])
    save_artifact(artifact_dir, "seed_robustness.txt", txt)

    for seed, r in results.items():
        assert r["ltid"] < r["valhalla"], seed
        assert r["ltid"] < r["gtid"], seed
        assert r["spatial"] > r["temporal"], seed
    # spread across seeds is modest
    ltids = [r["ltid"] for r in results.values()]
    assert max(ltids) - min(ltids) < 0.05
