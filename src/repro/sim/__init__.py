"""GPU simulator substrate: configuration, kernel DSL, functional
execution, trace capture and the cycle-approximate timing pipeline."""

from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher, KernelRun, run_kernel
from repro.sim.pipeline import (TimingResult, compare_baseline_st2,
                                simulate_sm)
from repro.sim.trace import AddTrace, InstStream
from repro.sim.trace_io import TraceBundle, load_trace, save_trace
from repro.sim.trace_store import StoredRun, TraceStore, trace_key

__all__ = [
    "AddTrace", "GPUConfig", "GridLauncher", "InstStream", "KernelRun",
    "LaunchConfig", "StoredRun", "TITAN_V", "TimingResult",
    "TraceBundle", "TraceStore", "compare_baseline_st2", "load_trace",
    "run_kernel", "save_trace", "simulate_sm", "trace_key",
]
