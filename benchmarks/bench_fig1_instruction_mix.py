"""Figure 1 — dynamic instruction mix per kernel.

Paper claim: ALU and FPU operations are prevalent; 21 of 23 kernels
execute more than 20 % ALU+FPU instructions.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.isa.opcodes import MixCategory

CATEGORIES = (MixCategory.ALU_ADD, MixCategory.ALU_OTHER,
              MixCategory.FPU_ADD, MixCategory.FPU_OTHER,
              MixCategory.OTHER)


def _mix_rows(suite_runs):
    rows = []
    for name, run in suite_runs.items():
        mix = run.insts.mix()
        total = sum(mix.values())
        fracs = [mix.get(c, 0) / total for c in CATEGORIES]
        rows.append((name, *fracs,
                     sum(fracs[:4])))          # ALU+FPU share
    return rows


def test_fig1_instruction_mix(benchmark, suite_runs, artifact_dir):
    rows = benchmark(_mix_rows, suite_runs)

    arith = np.array([r[-1] for r in rows])
    avg_row = ("Average", *[np.mean([r[i + 1] for r in rows])
                            for i in range(5)], arith.mean())
    txt = table(
        "Figure 1: dynamic instruction mix (fraction of thread insts)",
        ["kernel"] + [c.value for c in CATEGORIES] + ["ALU+FPU"],
        rows + [avg_row],
        ["{}"] + ["{:7.1%}"] * 6)
    txt += ("\n\nkernels with >20% ALU+FPU instructions: "
            f"{(arith > 0.20).sum()}/23   (paper: 21/23)")
    save_artifact(artifact_dir, "fig1_instruction_mix.txt", txt)

    # paper shape: arithmetic ops prevalent in nearly all kernels
    assert (arith > 0.20).sum() >= 20
    assert arith.mean() > 0.4
