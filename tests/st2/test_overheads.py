"""Section VI overhead arithmetic — the paper's exact numbers."""

import pytest

from repro.st2.overheads import overhead_report


@pytest.fixture(scope="module")
def report():
    return overhead_report()


class TestStorage:
    def test_crf_448_bytes_per_sm(self, report):
        assert report.crf_bytes_per_sm == 448

    def test_crf_chip_total_35kb(self, report):
        """Paper: 'the entire chip requires just 35 kB'."""
        assert report.crf_bytes_chip == 448 * 80
        assert 34_000 <= report.crf_bytes_chip <= 36_000

    def test_dff_bits_per_adder(self, report):
        """14 per ALU adder, 4 per FP32, 12 per FP64 (Section VI)."""
        expect = 64 * 14 + 64 * 4 + 32 * 12
        assert report.dff_bits_per_sm == expect

    def test_dff_chip_total_about_15kb(self, report):
        assert 14_000 <= report.dff_bytes_chip <= 16_000

    def test_total_storage_about_50kb(self, report):
        assert 48_000 <= report.total_storage_bytes <= 52_000

    def test_storage_fraction_below_two_permille(self, report):
        """Paper: 0.09 % of on-chip SRAM."""
        assert report.storage_fraction < 0.002


class TestLevelShifters:
    def test_area_below_one_percent(self, report):
        """Paper: < 0.68 % of the 815 mm^2 chip."""
        assert report.shifter_area_fraction < 0.012
        assert report.shifter_area_mm2 < 10.0

    def test_static_power_below_a_watt(self, report):
        """Paper: ~0.6 W total static."""
        assert 0.3 < report.shifter_static_w < 1.5

    def test_dynamic_power_sub_milliwatt_at_suite_rates(self, report):
        """Paper: ~470 uW averaged across the suite (worst-case
        every-bit-flips estimate)."""
        dyn = report.shifter_dynamic_w(adder_ops_per_s=1.8e9)
        assert dyn < 0.002

    def test_savings_penalty_below_one_percent(self, report):
        pen = report.savings_penalty(avg_system_power_w=200.0,
                                     adder_ops_per_s=1e12)
        assert pen < 0.01
