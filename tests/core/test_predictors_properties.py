"""Property-based tests: the vectorised history machinery must agree
with the sequential reference on arbitrary traces, and core invariants
must hold for any operands."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import ReferencePredictor
from repro.core.predictors import (MAX_PREDICTIONS, SpeculationConfig,
                                   predict_trace, run_speculation,
                                   trace_n_predictions, trace_peek,
                                   trace_slice_carries)
from tests.conftest import make_trace


@st.composite
def traces(draw, max_rows=80):
    """Small random traces with grouped warp instructions."""
    n_groups = draw(st.integers(1, max_rows // 4))
    pcs = draw(st.lists(st.integers(0, 6), min_size=n_groups,
                        max_size=n_groups))
    widths = draw(st.lists(st.sampled_from([23, 32, 52, 64]),
                           min_size=n_groups, max_size=n_groups))
    lanes_per_group = draw(st.integers(1, 4))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))

    pc, gtid, ltid, warp, op_a, op_b, width, cin = \
        [], [], [], [], [], [], [], []
    for g in range(n_groups):
        w = widths[g]
        for lane in range(lanes_per_group):
            pc.append(pcs[g])
            gtid.append(lane + 32 * (g % 3))
            ltid.append(lane)
            warp.append(g % 3)
            op_a.append(int(rng.integers(0, 1 << min(w, 62))))
            op_b.append(int(rng.integers(0, 1 << min(w, 62))))
            width.append(w)
            cin.append(int(rng.integers(0, 2)))
    t = make_trace(pc, gtid, ltid, op_a, op_b, cin=cin, width=width,
                   warp=warp)
    # group rows into warp instructions: same seq for a group
    t.seq = np.repeat(np.arange(n_groups, dtype=np.int64),
                      lanes_per_group)
    return t


CONFIGS = [
    SpeculationConfig("shared", "prev"),
    SpeculationConfig("ltid", "prev", pc_index="mod", pc_bits=4,
                      thread_key="ltid", peek=True),
    SpeculationConfig("full-gtid", "prev", pc_index="full",
                      thread_key="gtid"),
]


class TestOracleEquivalence:
    @given(trace=traces())
    @settings(max_examples=40, deadline=None)
    def test_vectorised_matches_sequential(self, trace):
        for cfg in CONFIGS:
            fast = predict_trace(trace, cfg).bits
            slow = ReferencePredictor(cfg).predict_trace(trace)
            n_preds = trace_n_predictions(trace)
            in_range = (np.arange(MAX_PREDICTIONS)[None, :]
                        < n_preds[:, None])
            assert np.array_equal(fast[in_range], slow[in_range]), \
                cfg.name


class TestUniversalInvariants:
    @given(trace=traces())
    @settings(max_examples=40, deadline=None)
    def test_peek_bits_always_correct(self, trace):
        known, value = trace_peek(trace)
        carries = trace_slice_carries(trace)[:, 1:]
        n_preds = trace_n_predictions(trace)
        in_range = (np.arange(MAX_PREDICTIONS)[None, :]
                    < n_preds[:, None])
        sel = known & in_range
        assert np.array_equal(value[sel], carries[sel])

    @given(trace=traces())
    @settings(max_examples=30, deadline=None)
    def test_mispredictions_bounded_by_wrong_bits(self, trace):
        """An op can only stall if at least one raw bit was wrong, and
        every wrong bit forces at least a one-slice recompute."""
        res = run_speculation(trace, CONFIGS[1])
        assert (res.mispredicted <= (res.wrong_bits > 0)).all()
        assert (res.recomputed[res.mispredicted] >= 1).all()
        assert (res.recomputed[~res.mispredicted] == 0).all()

    @given(trace=traces())
    @settings(max_examples=30, deadline=None)
    def test_static_zero_misses_exactly_on_carries(self, trace):
        res = run_speculation(trace, SpeculationConfig("z", "static0"))
        carries = trace_slice_carries(trace)[:, 1:]
        n_preds = trace_n_predictions(trace)
        in_range = (np.arange(MAX_PREDICTIONS)[None, :]
                    < n_preds[:, None])
        has_carry = (carries.astype(bool) & in_range).any(axis=1)
        # with all-zero predictions, E[i] fires iff some true slice
        # carry-out is 1 — i.e. exactly when a carry crosses a boundary
        assert np.array_equal(res.mispredicted, has_carry)

    @given(trace=traces())
    @settings(max_examples=30, deadline=None)
    def test_oracle_predictions_never_stall(self, trace):
        from repro.core.predictors import Prediction, evaluate_trace
        carries = trace_slice_carries(trace)
        pred = Prediction(
            config=CONFIGS[0], bits=carries[:, 1:],
            has_prev=np.ones((len(trace), MAX_PREDICTIONS), bool),
            peek_known=np.zeros((len(trace), MAX_PREDICTIONS), bool))
        res = evaluate_trace(trace, pred)
        assert not res.mispredicted.any()
