"""Flow-sensitive rules L6-L8 and the L4 -> L7 retraction logic."""

import textwrap

from repro.lint.analyzer import lint_source
from repro.lint.findings import INFO_RULES


def lint(src, **kw):
    kw.setdefault("hashed", False)
    return lint_source(textwrap.dedent(src), path="fixture.py", **kw)


def rules_of(findings):
    return sorted({f.rule for f in findings if not f.suppressed})


DIVERGENT_BARRIER = """
    def kernel(k, out, n):
        t = k.thread_id()
        with k.where(k.lt(t, n)):
            k.syncthreads()
        k.st_global(out, t, t)
"""

UNIFORM_BARRIER = """
    def kernel(k, out):
        t = k.thread_id()
        with k.where(k.lt(k.n_threads, 1024)):
            k.syncthreads()
        k.st_global(out, t, t)
"""

UNREACHABLE_BARRIER = """
    FLAG = 0

    def kernel(k, out, n):
        t = k.thread_id()
        if FLAG:
            with k.where(k.lt(t, n)):
                k.syncthreads()
        k.st_global(out, t, t)
"""

BAILING_BARRIER = """
    def kernel(k, out, n):
        t = k.thread_id()
        try:
            pass
        except Exception:
            pass
        with k.where(k.lt(t, n)):
            k.syncthreads()
        k.st_global(out, t, t)
"""


class TestL7:
    def test_fires_with_l4_on_confirmed_divergence(self):
        findings = lint(DIVERGENT_BARRIER)
        assert rules_of(findings) == ["L4", "L7"]
        l7 = next(f for f in findings if f.rule == "L7")
        assert "reachable" in l7.message

    def test_uniform_mask_retracts_l4(self):
        assert rules_of(lint(UNIFORM_BARRIER)) == []

    def test_unreachable_barrier_retracts_l4(self):
        assert rules_of(lint(UNREACHABLE_BARRIER)) == []

    def test_bailed_function_keeps_syntactic_l4(self):
        # flow analysis cannot vouch for the function: the syntactic
        # finding must survive, without a (confirmed) L7
        assert rules_of(lint(BAILING_BARRIER)) == ["L4"]

    def test_l4_alone_stays_syntactic(self):
        # --rules L4 without L7 must not silently enable flow analysis
        findings = lint(UNIFORM_BARRIER, rules=("L4",))
        assert rules_of(findings) == ["L4"]


PROVEN_LOOP = """
    N = 16

    def kernel(k, out):
        t = k.thread_id()
        acc = 0
        for i in k.range(N):
            acc = k.iadd(acc, i)
        k.st_global(out, t, acc)
"""


class TestL6L8:
    def test_only_informational_rules_fire(self):
        # lint_source returns them; CLI/baseline filter on INFO_RULES
        findings = lint(PROVEN_LOOP)
        assert set(rules_of(findings)) <= INFO_RULES

    def test_l6_reports_proven_carries(self):
        findings = lint(PROVEN_LOOP, rules=("L6",))
        assert rules_of(findings) == ["L6"]
        assert "carry" in findings[0].message

    def test_l8_requires_all_boundaries(self):
        findings = lint(PROVEN_LOOP, rules=("L8",))
        # the loop-inc pins every boundary -> fully dead speculation
        assert "L8" in rules_of(findings)

    def test_partial_proof_is_l6_only(self):
        # x in [0, 255] plus 1: boundary 0 straddles 256, boundaries
        # 1 and 2 are proven 0 -- a partial proof, so no L8
        src = """
            def kernel(k, out):
                t = k.thread_id()
                x = t % 256
                y = k.iadd(x, 1)
                k.st_global(out, t, y)
        """
        l6 = lint(src, rules=("L6",))
        l8 = lint(src, rules=("L8",))
        assert rules_of(l6) == ["L6"]
        assert rules_of(l8) == []

    def test_info_rules_are_exactly_l6_l8_l9_l10(self):
        assert INFO_RULES == {"L6", "L8", "L9", "L10"}
