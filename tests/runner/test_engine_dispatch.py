"""Engine selection: ``--engine {interp,vec,auto}`` through
``execute_unit`` and ``run_units``.

The dispatch contract: ``interp`` and ``vec`` are honoured as
requested (``vec`` raises when a run cannot take the vectorized path),
``auto`` prefers ``vec`` with a counted per-unit fallback — and
whichever engine runs, the numbers are identical.
"""

from __future__ import annotations

import pytest

from repro.core.speculation import PREV, ST2_DESIGN
from repro.runner import RunOptions, build_units, run_units
from repro.runner.units import (ENGINES, UnitSpec, _resolve_engine,
                                execute_unit, results_equal)
from repro.sim import vec
from repro.sim.trace_store import TraceStore

KERNELS = ["qrng_K2", "sortNets_K2"]
SCALE = 0.1


@pytest.fixture(scope="module")
def units():
    return build_units(KERNELS, configs=(ST2_DESIGN, PREV),
                       scale=SCALE, aux=False)


def opts(tmp_path, engine, workers=1, tag=""):
    return RunOptions(workers=workers, use_cache=False, engine=engine,
                      trace_store=TraceStore(
                          tmp_path / f"ts-{engine}{workers}{tag}"))


class TestExecuteUnitDispatch:
    SPEC = UnitSpec(kernel="qrng_K2", scale=SCALE, seed=0,
                    config=ST2_DESIGN, aux=False)

    def test_engine_field_records_what_ran(self):
        interp = execute_unit(self.SPEC, engine="interp")
        vec_r = execute_unit(self.SPEC, engine="vec")
        auto = execute_unit(self.SPEC, engine="auto")
        assert interp.data["engine"] == "interp"
        assert vec_r.data["engine"] == "vec"
        # the suite kernels are all vec-supported, so auto picks vec
        assert auto.data["engine"] == "vec"
        assert results_equal(interp, vec_r)
        assert results_equal(interp, auto)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            execute_unit(self.SPEC, engine="turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            RunOptions(engine="turbo")

    def test_auto_falls_back_when_unsupported(self, monkeypatch):
        monkeypatch.setattr("repro.sim.vec.supported",
                            lambda run, key=None: "nope")
        result = execute_unit(self.SPEC, engine="auto")
        assert result.data["engine"] == "interp"
        assert results_equal(result,
                             execute_unit(self.SPEC, engine="interp"))

    def test_forced_vec_raises_when_unsupported(self, monkeypatch):
        monkeypatch.setattr("repro.sim.vec.supported",
                            lambda run, key=None: "nope")
        with pytest.raises(vec.VecUnsupportedError, match="nope"):
            execute_unit(self.SPEC, engine="vec")

    def test_fallback_is_counted(self, monkeypatch):
        from repro import obs
        monkeypatch.setattr("repro.sim.vec.supported",
                            lambda run, key=None: "nope")
        with obs.scoped() as reg:
            execute_unit(self.SPEC, engine="auto")
        assert reg.snapshot()["counters"][
            "runner.engine.fallback"] == 1

    def test_resolve_engine_interp_never_scans(self):
        # interp short-circuits before any trace scan, so even a run
        # object the scanner would choke on is fine
        assert _resolve_engine("interp", object()) == "interp"


class TestRunUnitsPlumbing:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_vec_grid_equals_interp_grid(self, tmp_path, units,
                                         workers):
        interp = run_units(units, opts(tmp_path, "interp", workers))
        vec_r = run_units(units, opts(tmp_path, "vec", workers))
        for a, b in zip(interp, vec_r):
            assert a.data["engine"] == "interp"
            assert b.data["engine"] == "vec"
            assert results_equal(a, b), (workers, a.kernel)

    def test_auto_grid_uses_vec(self, tmp_path, units):
        results = run_units(units, opts(tmp_path, "auto"))
        assert all(r.data["engine"] == "vec" for r in results)

    def test_engine_survives_the_result_cache(self, tmp_path, units):
        from repro.runner import ResultCache
        cache = ResultCache(tmp_path / "cache")
        store = TraceStore(tmp_path / "ts-cache")
        cold = run_units(units, RunOptions(
            cache=cache, trace_store=store, engine="vec"))
        warm = run_units(units, RunOptions(
            cache=cache, trace_store=store, engine="vec"))
        assert all(r.data["engine"] == "vec" for r in cold)
        assert all(r.cached for r in warm)
        for c, w in zip(cold, warm):
            assert results_equal(c, w)


class TestInlineDispatch:
    """Small forced-vec grids skip the pool (the fork + IPC overhead
    dominates millisecond-priced units); everything else honours
    ``options.workers``."""

    def eval_workers(self, tmp_path, monkeypatch, engine, tag):
        from repro.runner import pool

        seen = []
        real = pool._map_parallel

        def spy(fn, items, workers, store_root=None,
                need_models=True, chunksize=1):
            if fn is pool._run_one:
                seen.append(workers)
            return real(fn, items, workers, store_root,
                        need_models=need_models, chunksize=chunksize)

        monkeypatch.setattr(pool, "_map_parallel", spy)
        units = build_units(KERNELS, configs=(ST2_DESIGN,),
                            scale=SCALE, aux=False)
        run_units(units, opts(tmp_path, engine, workers=2, tag=tag))
        assert len(seen) == 1
        return seen[0]

    def test_small_vec_grid_runs_inline(self, tmp_path, monkeypatch):
        assert self.eval_workers(tmp_path, monkeypatch, "vec",
                                 "a") == 1

    def test_interp_grid_honours_workers(self, tmp_path, monkeypatch):
        assert self.eval_workers(tmp_path, monkeypatch, "interp",
                                 "b") == 2


def test_engines_tuple_is_the_contract():
    assert ENGINES == ("interp", "vec", "auto")
