"""Vectorized trace-replay evaluation engine (``--engine vec``).

Replays a (trace × config) evaluation unit as batched numpy operations
over the trace store's read-only memmap columns — speculative-adder
slice evaluation, predictor updates (including the
``StaticPeekPredictor`` facts overlay) and misprediction/recompute
accounting — instead of the interpreter's per-width, per-pass Python.
Bit-identical results and identical obs counter totals are the
contract; the dispatch in :mod:`repro.runner.units` falls back to the
interpreter (engine ``auto``) whenever :func:`supported` names a
reason a run cannot take this path.
"""

from repro.sim.vec.engine import (VecUnsupportedError, evaluate_unit,
                                  supported)
from repro.sim.vec.plan import clear_plans, plan_for

__all__ = ["VecUnsupportedError", "evaluate_unit", "supported",
           "plan_for", "clear_plans"]
