"""Set-associative cache model for the memory hierarchy.

The first-order power model charges DRAM with a fixed L2 miss ratio;
this module replaces that with an actual set-associative LRU cache
simulated over the kernel's sector-address stream, so per-kernel
locality (tiled reuse in sgemm, streaming in walsh, pointer-chasing in
b+tree) shows up in the DRAM energy the way it does on hardware.

The GV100's L2 is 4.5 MB, 64 B lines, 16-way; we model sectors (32 B)
mapped onto lines. Simulation is per-SM-agnostic (one shared L2), LRU
within a set, write-allocate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio


class SetAssociativeCache:
    """LRU set-associative cache over byte addresses."""

    def __init__(self, size_bytes: int = 4_608 * 1024,
                 line_bytes: int = 64, ways: int = 16):
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must be a multiple of line*ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        # tags[set, way]; -1 = invalid.  LRU tracked via per-entry
        # last-use stamps (simple and exact).
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def access_block(self, addresses: np.ndarray) -> int:
        """Access a batch of byte addresses (one warp transaction set);
        returns the number of misses in the batch."""
        lines = np.unique(np.asarray(addresses, dtype=np.int64)
                          // self.line_bytes)
        misses = 0
        for line in lines:
            misses += self._access_line(int(line))
        self.stats.accesses += len(lines)
        self.stats.misses += misses
        return misses

    def _access_line(self, line: int) -> int:
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        self._clock += 1
        ways = self._tags[set_idx]
        hit = np.nonzero(ways == tag)[0]
        if len(hit):
            self._stamp[set_idx, hit[0]] = self._clock
            return 0
        victim = int(np.argmin(self._stamp[set_idx]))
        self._tags[set_idx, victim] = tag
        self._stamp[set_idx, victim] = self._clock
        return 1


def simulate_l2(address_batches, size_bytes: int = 4_608 * 1024,
                line_bytes: int = 64, ways: int = 16) -> CacheStats:
    """Run a sequence of warp-transaction address batches through an
    L2-shaped cache; returns the hit/miss statistics."""
    cache = SetAssociativeCache(size_bytes, line_bytes, ways)
    for batch in address_batches:
        cache.access_block(batch)
    return cache.stats


def l2_miss_ratio_for_run(run, max_batches: int = 20_000) -> float:
    """L2 miss ratio of a kernel run's recorded global accesses.

    Requires the run's :class:`~repro.sim.memory.MemoryStats` to carry
    the address stream (``record_streams=True`` on the launcher);
    falls back to the model's fixed default otherwise.
    """
    from repro.power.activity import L2_MISS_RATIO
    streams = getattr(run.mem, "address_batches", None)
    if not streams:
        return L2_MISS_RATIO
    return simulate_l2(streams[:max_batches]).miss_ratio
