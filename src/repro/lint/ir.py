"""Kernel IR: AST → basic blocks + CFG for the abstract interpreter.

Each kernel function is lowered into a small register-machine IR:
expression evaluation produces single-assignment temporaries, local
variables are explicit ``load``/``store`` instructions, and control
flow is a graph of :class:`Block`\\ s.  DSL constructs become
first-class instructions:

* ``dslcall`` — any ``k.<method>(...)`` call, annotated with the active
  ``k.inline`` scope stack and ``k.where`` condition stack;
* ``barrier`` — ``k.syncthreads()``, annotated the same way (the L7
  rule reads the condition stack off this instruction);
* ``loopiter`` — a loop header defining the loop variable (from
  ``k.range`` bounds or a generic iterable);
* ``range_inc`` — the synthetic latch instruction modelling the *real*
  recorded loop-increment IADD that ``k.range`` emits once per
  iteration (the paper's "PC1" highly-correlated addition).

``k.where`` bodies are *not* branches: every lane executes them with a
mask, so they stay in straight-line code and only contribute to the
condition stack.  Real Python ``if``/``while``/``for`` become CFG
edges.

Constructs the lowering cannot model soundly raise
:class:`LoweringError`; the analyzer then falls back to the syntactic
rules for that function (no facts, no L4→L7 refinement).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

Temp = int
Arg = Union[int, None]


class LoweringError(Exception):
    """The function uses a construct the IR cannot model soundly."""


@dataclass
class Instr:
    """One IR instruction.

    ``op`` selects the kind; ``dest`` is the defined temp (or None),
    ``args`` are operand temps.  ``name`` carries variable / attribute
    / method / function identity where applicable.  DSL instructions
    additionally carry ``scopes`` (the lexical ``k.inline`` stack,
    ``None`` entries for dynamic tags) and ``where`` (the ``k.where``
    condition temps active at the site).
    """

    op: str
    dest: Optional[Temp] = None
    args: Tuple[Temp, ...] = ()
    name: str = ""
    value: object = None
    lineno: int = 0
    scopes: Tuple[Optional[str], ...] = ()
    where: Tuple[Temp, ...] = ()
    # range loops: normalised (start, stop, step) argument temps
    range_args: Tuple[Temp, ...] = ()
    var: str = ""


@dataclass
class Block:
    """Basic block: straight-line instructions + successor edges.

    ``succs`` ordering is meaningful for two-way terminators:
    ``branch`` and ``loopiter`` list ``[taken/body, fallthrough/exit]``.
    """

    id: int
    instrs: List[Instr] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    terminator: str = "jump"     # jump | branch | loop | ret


@dataclass
class IRFunction:
    """A lowered kernel function."""

    name: str
    path: str
    lineno: int
    ctx: str                      # the BlockContext parameter name
    params: Tuple[str, ...]
    blocks: List[Block]
    entry: int = 0

    def def_map(self) -> Dict[Temp, Instr]:
        """temp id -> defining instruction (temps are SSA)."""
        out: Dict[Temp, Instr] = {}
        for block in self.blocks:
            for instr in block.instrs:
                if instr.dest is not None:
                    out[instr.dest] = instr
        return out

    def preds(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {b.id: [] for b in self.blocks}
        for block in self.blocks:
            for s in block.succs:
                out[s].append(block.id)
        return out


def _dotted_name(node: ast.AST) -> str:
    """'np.zeros' for Attribute chains on Names; '' when not static."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Lowerer:
    def __init__(self, fn: ast.FunctionDef, path: str):
        self.fn = fn
        self.path = path
        self.ctx = fn.args.args[0].arg if fn.args.args else "k"
        self.blocks: List[Block] = []
        self.cur = self._new_block()
        self.n_temps = 0
        self.where_stack: List[Temp] = []
        self.scope_stack: List[Optional[str]] = []
        # (latch_block, exit_block, is_krange) per enclosing loop
        self.loop_stack: List[Tuple[int, int, bool]] = []
        self.exit_block = self._new_block()
        self.exit_block.terminator = "ret"

    # -- plumbing ------------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block

    def _new_temp(self) -> Temp:
        self.n_temps += 1
        return self.n_temps - 1

    def emit(self, op: str, *, args: Tuple[Temp, ...] = (),
             name: str = "", value: object = None, lineno: int = 0,
             dest: bool = True, range_args: Tuple[Temp, ...] = (),
             var: str = "") -> Optional[Temp]:
        d = self._new_temp() if dest else None
        self.cur.instrs.append(Instr(
            op=op, dest=d, args=args, name=name, value=value,
            lineno=lineno, scopes=tuple(self.scope_stack),
            where=tuple(self.where_stack), range_args=range_args,
            var=var))
        return d

    def _seal(self, *succs: int, terminator: str = "jump") -> None:
        self.cur.succs = list(succs)
        self.cur.terminator = terminator

    def _start(self, block: Block) -> None:
        self.cur = block

    # -- expressions ---------------------------------------------------

    def _is_ctx_method(self, node: ast.AST, method: str = "") -> str:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == self.ctx):
            attr = node.func.attr
            if not method or attr == method:
                return attr
        return ""

    def lower_expr(self, node: ast.AST) -> Temp:
        ln = getattr(node, "lineno", 0)
        if isinstance(node, ast.Constant):
            return self.emit("const", value=node.value, lineno=ln)
        if isinstance(node, ast.Name):
            return self.emit("load", name=node.id, lineno=ln)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == self.ctx:
                return self.emit("ctxattr", name=node.attr, lineno=ln)
            src = self.lower_expr(base)
            return self.emit("attr", args=(src,), name=node.attr,
                             lineno=ln)
        if isinstance(node, ast.BinOp):
            a = self.lower_expr(node.left)
            b = self.lower_expr(node.right)
            sym = _BINOPS.get(type(node.op), "?")
            return self.emit("binop", args=(a, b), name=sym, lineno=ln)
        if isinstance(node, ast.UnaryOp):
            a = self.lower_expr(node.operand)
            sym = _UNOPS.get(type(node.op), "?")
            return self.emit("unop", args=(a,), name=sym, lineno=ln)
        if isinstance(node, ast.BoolOp):
            vals = tuple(self.lower_expr(v) for v in node.values)
            sym = "and" if isinstance(node.op, ast.And) else "or"
            return self.emit("boolop", args=vals, name=sym, lineno=ln)
        if isinstance(node, ast.Compare):
            if len(node.ops) == 1:
                a = self.lower_expr(node.left)
                b = self.lower_expr(node.comparators[0])
                sym = _CMPOPS.get(type(node.ops[0]), "?")
                return self.emit("cmp", args=(a, b), name=sym,
                                 lineno=ln)
            for comp in [node.left] + list(node.comparators):
                self.lower_expr(comp)
            return self.emit("unknown", lineno=ln, name="chained-cmp")
        if isinstance(node, ast.Call):
            return self._lower_call(node)
        if isinstance(node, ast.IfExp):
            c = self.lower_expr(node.test)
            a = self.lower_expr(node.body)
            b = self.lower_expr(node.orelse)
            return self.emit("select", args=(c, a, b), lineno=ln)
        if isinstance(node, ast.Subscript):
            base = self.lower_expr(node.value)
            idx = self.lower_expr(node.slice) \
                if not isinstance(node.slice, ast.Slice) \
                else self.emit("unknown", name="slice", lineno=ln)
            return self.emit("subscript", args=(base, idx), lineno=ln)
        if isinstance(node, (ast.Tuple, ast.List)):
            items = tuple(self.lower_expr(e) for e in node.elts
                          if not isinstance(e, ast.Starred))
            return self.emit("tuple", args=items, lineno=ln)
        if isinstance(node, ast.JoinedStr):
            return self.emit("unknown", name="fstring", lineno=ln)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.Lambda, ast.Dict,
                             ast.Set, ast.Starred, ast.Await,
                             ast.NamedExpr, ast.Slice)):
            if _contains_ctx_use(node, self.ctx):
                raise LoweringError(
                    f"{self.path}:{ln}: DSL use inside "
                    f"{type(node).__name__} is not lowerable")
            return self.emit("unknown", name=type(node).__name__,
                             lineno=ln)
        raise LoweringError(
            f"{self.path}:{ln}: unsupported expression "
            f"{type(node).__name__}")

    def _lower_call(self, node: ast.Call) -> Temp:
        ln = node.lineno
        method = self._is_ctx_method(node)
        args = tuple(self.lower_expr(a) for a in node.args)
        for kw in node.keywords:
            if kw.value is not None:
                self.lower_expr(kw.value)
        if method:
            if method == "syncthreads":
                return self.emit("barrier", lineno=ln, name=method)
            return self.emit("dslcall", args=args, name=method,
                             lineno=ln)
        func_path = _dotted_name(node.func)
        if not func_path:
            self.lower_expr(node.func)
        return self.emit("call", args=args, name=func_path, lineno=ln)

    # -- statements ----------------------------------------------------

    def lower_body(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.stmt) -> None:
        ln = getattr(stmt, "lineno", 0)
        if isinstance(stmt, ast.Expr):
            self.lower_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            src = self.lower_expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, src)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                src = self.lower_expr(stmt.value)
                self._assign(stmt.target, src)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                cur = self.emit("load", name=stmt.target.id, lineno=ln)
                val = self.lower_expr(stmt.value)
                sym = _BINOPS.get(type(stmt.op), "?")
                res = self.emit("binop", args=(cur, val), name=sym,
                                lineno=ln)
                self.emit("store", args=(res,), name=stmt.target.id,
                          lineno=ln, dest=False)
            else:
                self.lower_expr(stmt.value)
                self._assign(stmt.target,
                             self.emit("unknown", lineno=ln))
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.With):
            self._lower_with(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.lower_expr(stmt.value)
            self.emit("ret", lineno=ln, dest=False)
            self._seal(self.exit_block.id, terminator="ret")
            self._start(self._new_block())
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LoweringError(f"{self.path}:{ln}: break outside "
                                    f"loop")
            # jumps straight to the loop exit: a k.range generator
            # abandoned by break never emits its pending increment,
            # so the latch is (correctly) bypassed
            self._seal(self.loop_stack[-1][1])
            self._start(self._new_block())
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LoweringError(f"{self.path}:{ln}: continue "
                                    f"outside loop")
            # continue resumes the generator: the latch (and its
            # recorded increment) still runs
            self._seal(self.loop_stack[-1][0])
            self._start(self._new_block())
        elif isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal)):
            pass
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if _contains_ctx_use(stmt, self.ctx):
                raise LoweringError(
                    f"{self.path}:{ln}: nested definition uses the "
                    f"DSL context")
            self.emit("store", args=(self.emit("unknown", lineno=ln),),
                      name=stmt.name, lineno=ln, dest=False)
        elif isinstance(stmt, ast.Assert):
            self.lower_expr(stmt.test)
        elif isinstance(stmt, ast.Delete):
            pass
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.lower_expr(stmt.exc)
            self.emit("ret", name="raise", lineno=ln, dest=False)
            self._seal(self.exit_block.id, terminator="ret")
            self._start(self._new_block())
        else:
            raise LoweringError(
                f"{self.path}:{ln}: unsupported statement "
                f"{type(stmt).__name__}")

    def _assign(self, target: ast.AST, src: Temp) -> None:
        ln = getattr(target, "lineno", 0)
        if isinstance(target, ast.Name):
            self.emit("store", args=(src,), name=target.id, lineno=ln,
                      dest=False)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, self.emit("unknown", lineno=ln))
        elif isinstance(target, ast.Subscript):
            self.lower_expr(target.value)
            if not isinstance(target.slice, ast.Slice):
                self.lower_expr(target.slice)
        elif isinstance(target, ast.Attribute):
            self.lower_expr(target.value)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, src)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.test)
        then_block = self._new_block()
        else_block = self._new_block()
        join_block = self._new_block()
        self._seal(then_block.id, else_block.id, terminator="branch")
        self.cur.instrs.append(Instr(
            op="branch", args=(cond,), lineno=stmt.lineno,
            scopes=tuple(self.scope_stack),
            where=tuple(self.where_stack)))

        self._start(then_block)
        self.lower_body(stmt.body)
        self._seal(join_block.id)

        self._start(else_block)
        self.lower_body(stmt.orelse)
        self._seal(join_block.id)

        self._start(join_block)

    def _lower_while(self, stmt: ast.While) -> None:
        header = self._new_block()
        body = self._new_block()
        exit_block = self._new_block()
        self._seal(header.id)

        self._start(header)
        cond = self.lower_expr(stmt.test)
        self.cur.instrs.append(Instr(
            op="branch", args=(cond,), lineno=stmt.lineno,
            scopes=tuple(self.scope_stack),
            where=tuple(self.where_stack)))
        self._seal(body.id, exit_block.id, terminator="branch")

        self.loop_stack.append((header.id, exit_block.id, False))
        self._start(body)
        self.lower_body(stmt.body)
        self._seal(header.id)
        self.loop_stack.pop()

        if stmt.orelse:
            self._start(exit_block)
            self.lower_body(stmt.orelse)
            after = self._new_block()
            self._seal(after.id)
            self._start(after)
        else:
            self._start(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        if not isinstance(stmt.target, ast.Name):
            # tuple targets: model as generic iteration over unknowns
            var = ""
        else:
            var = stmt.target.id
        is_krange = bool(self._is_ctx_method(stmt.iter, "range"))
        ln = stmt.lineno

        if is_krange:
            it = stmt.iter
            assert isinstance(it, ast.Call)
            raw = [self.lower_expr(a) for a in it.args]
            if len(raw) == 1:
                zero = self.emit("const", value=0, lineno=ln)
                one = self.emit("const", value=1, lineno=ln)
                range_args = (zero, raw[0], one)
            elif len(raw) == 2:
                one = self.emit("const", value=1, lineno=ln)
                range_args = (raw[0], raw[1], one)
            elif len(raw) == 3:
                range_args = (raw[0], raw[1], raw[2])
            else:
                raise LoweringError(f"{self.path}:{ln}: k.range() "
                                    f"needs 1-3 arguments")
            iter_temp: Tuple[Temp, ...] = ()
        else:
            iter_temp = (self.lower_expr(stmt.iter),)
            range_args = ()

        header = self._new_block()
        body = self._new_block()
        latch = self._new_block()
        exit_block = self._new_block()
        self._seal(header.id)

        self._start(header)
        self.cur.instrs.append(Instr(
            op="loopiter", args=iter_temp, name="krange" if is_krange
            else "iter", lineno=ln, var=var,
            range_args=range_args, scopes=tuple(self.scope_stack),
            where=tuple(self.where_stack)))
        self._seal(body.id, exit_block.id, terminator="loop")

        self.loop_stack.append((latch.id, exit_block.id, is_krange))
        self._start(body)
        self.lower_body(stmt.body)
        self._seal(latch.id)
        self.loop_stack.pop()

        self._start(latch)
        if is_krange:
            # the recorded loop-increment IADD: i + step at the
            # k.range call site, once per iteration
            self.cur.instrs.append(Instr(
                op="range_inc", args=(), name="loop-inc", lineno=ln,
                var=var, range_args=range_args,
                scopes=tuple(self.scope_stack),
                where=tuple(self.where_stack)))
        self._seal(header.id)

        if stmt.orelse:
            self._start(exit_block)
            self.lower_body(stmt.orelse)
            after = self._new_block()
            self._seal(after.id)
            self._start(after)
        else:
            self._start(exit_block)

    def _lower_with(self, stmt: ast.With) -> None:
        pushed_where = 0
        pushed_scope = 0
        for item in stmt.items:
            call = item.context_expr
            attr = self._is_ctx_method(call)
            if attr == "where":
                assert isinstance(call, ast.Call)
                if len(call.args) != 1:
                    raise LoweringError(
                        f"{self.path}:{stmt.lineno}: k.where() takes "
                        f"one condition")
                cond = self.lower_expr(call.args[0])
                self.where_stack.append(cond)
                pushed_where += 1
            elif attr == "inline":
                assert isinstance(call, ast.Call)
                tag: Optional[str] = None
                if call.args and isinstance(call.args[0], ast.Constant):
                    tag = str(call.args[0].value)
                else:
                    for a in call.args:
                        self.lower_expr(a)
                self.scope_stack.append(tag)
                pushed_scope += 1
            else:
                self.lower_expr(call)
            if item.optional_vars is not None:
                self._assign(item.optional_vars,
                             self.emit("unknown",
                                       lineno=stmt.lineno))
        try:
            self.lower_body(stmt.body)
        finally:
            for _ in range(pushed_where):
                self.where_stack.pop()
            for _ in range(pushed_scope):
                self.scope_stack.pop()

    # -- entry ---------------------------------------------------------

    def lower(self) -> IRFunction:
        params = tuple(a.arg for a in self.fn.args.args)
        self.lower_body(self.fn.body)
        self._seal(self.exit_block.id)
        return IRFunction(
            name=self.fn.name, path=self.path, lineno=self.fn.lineno,
            ctx=self.ctx, params=params, blocks=self.blocks,
            entry=0)


_BINOPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
           ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
           ast.LShift: "<<", ast.RShift: ">>", ast.BitAnd: "&",
           ast.BitOr: "|", ast.BitXor: "^", ast.MatMult: "@"}
_UNOPS = {ast.USub: "-", ast.UAdd: "+", ast.Invert: "~",
          ast.Not: "not"}
_CMPOPS = {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
           ast.Eq: "==", ast.NotEq: "!=", ast.Is: "==",
           ast.IsNot: "!=", ast.In: "in", ast.NotIn: "not-in"}


def _contains_ctx_use(node: ast.AST, ctx: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == ctx:
            return True
    return False


def lower_function(fn: ast.FunctionDef, path: str = "<string>"
                   ) -> IRFunction:
    """Lower one kernel function; raises :class:`LoweringError` on
    constructs the IR cannot model."""
    if isinstance(fn, ast.AsyncFunctionDef):  # pragma: no cover
        raise LoweringError(f"{path}:{fn.lineno}: async kernels are "
                            f"not supported")
    return _Lowerer(fn, path).lower()
