"""Persistent on-disk result cache for runner work units.

Entries live under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) as
one JSON file per unit, keyed by a SHA-256 content hash of the unit's
identity (kernel, scale, seed, full SpeculationConfig, schema version)
*and* a digest of the result-relevant source modules — so editing any
module that can change the numbers silently invalidates every stale
entry, while doc-only packages (analysis, report, the runner itself)
do not churn the cache.

Corrupt, truncated or foreign entries are treated as misses: the unit
is recomputed and the bad file overwritten, never raised to the caller.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path

from repro import obs
from repro.runner.units import RESULT_FIELDS, UnitSpec

#: Subpackages that render, schedule or *check* results but cannot
#: change a single number — the only thing maintained by hand.  Every
#: other subpackage of ``repro`` is result-affecting and hashed into
#: the cache key automatically, so adding a new simulation package can
#: never be silently forgotten here.  ``obs`` observes the computation
#: without influencing it, so instrumentation edits keep caches warm.
NON_RESULT_PACKAGES = frozenset(
    {"analysis", "report", "runner", "lint", "obs", "fuzz", "serve",
     "sweep"})

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


@lru_cache(maxsize=1)
def result_affecting_packages() -> tuple:
    """Sorted subpackages of ``repro`` whose source determines unit
    results, discovered from the package tree on disk."""
    import repro
    root = Path(repro.__file__).parent
    return tuple(sorted(
        child.name for child in root.iterdir()
        if child.is_dir() and (child / "__init__.py").is_file()
        and child.name not in NON_RESULT_PACKAGES))


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every source file that can influence unit results."""
    import repro
    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for package in result_affecting_packages():
        pkg_dir = root / package
        if not pkg_dir.is_dir():
            continue
        for path in sorted(pkg_dir.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def unit_key(spec: UnitSpec, version: str = None) -> str:
    """Content-hash cache key for one work unit."""
    payload = spec.identity()
    payload["code_version"] = version if version is not None \
        else code_version()
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:40]


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """One-file-per-unit JSON store with atomic writes.

    ``load`` returns ``None`` on any miss — including unreadable JSON,
    a key mismatch (hash collision or renamed file) and missing result
    fields — so callers recompute instead of crashing.
    """

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.units_dir = self.root / "units"

    def path(self, key: str) -> Path:
        return self.units_dir / f"{key}.json"

    def load(self, key: str):
        path = self.path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
            if payload.get("key") != key:
                obs.add("result_cache.misses")
                return None
            result = payload["result"]
            if any(f not in result for f in RESULT_FIELDS):
                obs.add("result_cache.misses")
                return None
            obs.add("result_cache.hits")
            return result
        except (OSError, ValueError, TypeError, KeyError):
            obs.add("result_cache.misses")
            return None

    def store(self, key: str, result: dict) -> Path:
        self.units_dir.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "result": result}
        fd, tmp = tempfile.mkstemp(dir=self.units_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return self.path(key)

    def __len__(self) -> int:
        if not self.units_dir.is_dir():
            return 0
        return sum(1 for _ in self.units_dir.glob("*.json"))
