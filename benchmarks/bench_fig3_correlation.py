"""Figure 3 — 8-bit slice carry-in correlation across the temporal and
spatial axes.

Paper numbers (averages over the suite): Prev+Gtid ~50 %,
Prev+FullPC+Gtid ~83 %, Prev+FullPC+Ltid ~89 %.  The load-bearing shape
is the ordering: PC indexing (spatial) must add a lot; lane-shared
history (Ltid) must add a bit more.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import grouped_bars
from repro.core.correlation import slice_carry_correlation
from repro.core.speculation import FIG3_CONFIGS

PAPER_AVERAGES = {"Prev+Gtid": 0.50, "Prev+FullPC+Gtid": 0.83,
                  "Prev+FullPC+Ltid": 0.89}


def _correlate_all(suite_runs):
    return {name: slice_carry_correlation(run.trace, name)
            for name, run in suite_runs.items()}


def test_fig3_slice_carry_correlation(benchmark, suite_runs,
                                      artifact_dir):
    summaries = benchmark.pedantic(_correlate_all, args=(suite_runs,),
                                   rounds=1, iterations=1)

    names = list(summaries)
    series = {cfg.name: [summaries[n].rate(cfg.name) for n in names]
              for cfg in FIG3_CONFIGS}
    txt = grouped_bars("Figure 3: slice carry-in match rate per kernel",
                       names, series)
    txt += "\naverages (ours vs paper):"
    averages = {}
    for cfg_name, values in series.items():
        avg = float(np.nanmean(values))
        averages[cfg_name] = avg
        txt += (f"\n  {cfg_name:18s} {avg:6.1%}  "
                f"(paper {PAPER_AVERAGES[cfg_name]:.0%})")
    save_artifact(artifact_dir, "fig3_correlation.txt", txt)

    # ordering claims
    assert averages["Prev+FullPC+Gtid"] > averages["Prev+Gtid"], \
        "spatio-temporal must beat temporal-only"
    assert averages["Prev+FullPC+Ltid"] > averages["Prev+FullPC+Gtid"], \
        "lane-shared history must find matches fastest"
    # magnitudes in the paper's regime
    assert averages["Prev+FullPC+Gtid"] > 0.7
    assert averages["Prev+FullPC+Ltid"] > 0.8
