"""Registry semantics: counters, timers, spans, scoping, merging."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import Obs, TimerStat, get_obs, scoped


class TestCounters:
    def test_accumulate(self):
        reg = Obs()
        reg.add("a.b")
        reg.add("a.b", 2)
        assert reg.counter("a.b") == 3

    def test_unwritten_counter_reads_zero(self):
        assert Obs().counter("nothing") == 0

    def test_thread_safety(self):
        """4 threads x 10k increments must not lose a single one."""
        reg = Obs()

        def hammer():
            for _ in range(10_000):
                reg.add("hits")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits") == 40_000


class TestTimers:
    def test_record_and_stats(self):
        reg = Obs()
        reg.record_timer("t", 1.0)
        reg.record_timer("t", 3.0)
        stat = reg.snapshot()["timers"]["t"]
        assert stat["count"] == 2
        assert stat["total_s"] == pytest.approx(4.0)
        assert stat["max_s"] == pytest.approx(3.0)
        assert stat["mean_s"] == pytest.approx(2.0)

    def test_timer_context_manager(self):
        reg = Obs()
        with reg.timer("block"):
            pass
        stat = reg.snapshot()["timers"]["block"]
        assert stat["count"] == 1
        assert stat["total_s"] >= 0.0

    def test_timer_records_on_exception(self):
        reg = Obs()
        with pytest.raises(RuntimeError):
            with reg.timer("boom"):
                raise RuntimeError
        assert reg.snapshot()["timers"]["boom"]["count"] == 1

    def test_mean_of_empty_timer(self):
        assert TimerStat().mean_s == 0.0


class TestSpans:
    def test_nesting_joins_paths(self):
        reg = Obs()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        timers = reg.snapshot()["timers"]
        assert set(timers) == {"outer", "outer/inner"}

    def test_span_path_helper(self):
        reg = Obs()
        assert reg.span_path("x") == "x"
        with reg.span("a"):
            assert reg.span_path() == "a"
            assert reg.span_path("b") == "a/b"
        assert reg.span_path() == ""

    def test_span_stack_is_thread_local(self):
        """A span open on one thread never prefixes another thread's."""
        reg = Obs()
        seen = {}

        def other():
            with reg.span("worker"):
                seen["path"] = reg.span_path()

        with reg.span("main"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert seen["path"] == "worker"
        assert set(reg.snapshot()["timers"]) == {"main", "worker"}

    def test_span_pops_on_exception(self):
        reg = Obs()
        with pytest.raises(RuntimeError):
            with reg.span("bad"):
                raise RuntimeError
        assert reg.span_path() == ""


class TestSnapshotMerge:
    def test_snapshot_is_json_native_and_sorted(self):
        import json
        reg = Obs()
        reg.add("z", 1)
        reg.add("a", 2)
        reg.record_timer("t", 0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)    # must not raise

    def test_merge_accumulates(self):
        a, b = Obs(), Obs()
        a.add("n", 1)
        a.record_timer("t", 1.0)
        b.add("n", 2)
        b.add("only_b", 5)
        b.record_timer("t", 3.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"n": 3, "only_b": 5}
        assert snap["timers"]["t"]["count"] == 2
        assert snap["timers"]["t"]["max_s"] == pytest.approx(3.0)

    def test_merge_empty_is_noop(self):
        reg = Obs()
        reg.add("n")
        reg.merge({})
        reg.merge(None)
        assert reg.counter("n") == 1

    def test_reset_and_len(self):
        reg = Obs()
        reg.add("c")
        reg.record_timer("t", 1.0)
        assert len(reg) == 2
        reg.reset()
        assert len(reg) == 0
        assert reg.snapshot() == {"counters": {}, "timers": {}}


class TestActiveRegistry:
    def test_module_helpers_hit_scoped_registry(self):
        with scoped() as reg:
            obs.add("c", 2)
            obs.record_timer("t", 1.0)
            with obs.timer("u"):
                pass
            with obs.span("s"):
                pass
            assert get_obs() is reg
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert set(snap["timers"]) == {"t", "u", "s"}

    def test_scopes_nest_and_restore(self):
        with scoped() as outer:
            with scoped() as inner:
                assert get_obs() is inner
                obs.add("x")
            assert get_obs() is outer
        assert inner.counter("x") == 1
        assert outer.counter("x") == 0

    def test_scoped_accepts_existing_registry(self):
        mine = Obs()
        with scoped(mine) as reg:
            assert reg is mine
            obs.add("y")
        assert mine.counter("y") == 1

    def test_scope_is_thread_local(self):
        """A scope on the main thread must not capture other threads'
        instrumentation (workers install their own scopes)."""
        hits = {}

        def worker():
            hits["registry"] = get_obs()

        with scoped() as reg:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert hits["registry"] is not reg

    def test_unscoped_falls_back_to_global(self):
        from repro.obs import _GLOBAL
        assert get_obs() is _GLOBAL
