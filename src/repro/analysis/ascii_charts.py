"""Terminal renderings of the paper's figures.

Every benchmark prints its figure as an ASCII chart so results are
inspectable without any plotting dependency: horizontal bar charts for
the per-kernel figures, grouped/stacked variants for Figure 7, and a
simple scatter for the power-model validation.
"""

from __future__ import annotations

import numpy as np


def hbar_chart(title: str, labels, values, width: int = 46,
               fmt: str = "{:6.1%}", vmax: float = None) -> str:
    """Horizontal bar chart, one row per label."""
    values = list(values)
    vmax = vmax if vmax is not None else max(
        [v for v in values if not np.isnan(v)] + [1e-12])
    label_w = max((len(str(l)) for l in labels), default=4)
    lines = [title, "-" * len(title)]
    for label, v in zip(labels, values):
        if np.isnan(v):
            bar, txt = "", "   n/a"
        else:
            bar = "#" * max(int(round(width * v / vmax)), 0)
            txt = fmt.format(v)
        lines.append(f"{str(label):>{label_w}} |{bar:<{width}}| {txt}")
    return "\n".join(lines)


def grouped_bars(title: str, labels, series: dict, width: int = 40,
                 fmt: str = "{:6.1%}") -> str:
    """Several series per label (e.g. Figure 3's three configs)."""
    vmax = max(max(vals) for vals in series.values()) or 1e-12
    label_w = max(len(str(l)) for l in labels)
    key_w = max(len(k) for k in series)
    lines = [title, "-" * len(title)]
    for i, label in enumerate(labels):
        for j, (key, vals) in enumerate(series.items()):
            v = vals[i]
            bar = "" if np.isnan(v) else \
                "#" * max(int(round(width * v / vmax)), 0)
            txt = "   n/a" if np.isnan(v) else fmt.format(v)
            name = str(label) if j == 0 else ""
            lines.append(f"{name:>{label_w}} {key:<{key_w}} "
                         f"|{bar:<{width}}| {txt}")
        lines.append("")
    return "\n".join(lines)


def stacked_pair(title: str, labels, baseline_stacks, st2_stacks,
                 components, width: int = 50) -> str:
    """Figure 7: two normalised stacked bars per kernel.

    ``*_stacks`` are dicts component-name -> fraction per kernel.
    """
    glyphs = "#@%*+=~-:."
    comp_glyph = {c: glyphs[i % len(glyphs)]
                  for i, c in enumerate(components)}
    label_w = max(len(str(l)) for l in labels)
    lines = [title, "-" * len(title),
             "legend: " + "  ".join(f"{comp_glyph[c]}={c}"
                                    for c in components)]
    for label, b, s in zip(labels, baseline_stacks, st2_stacks):
        for tag, stack in (("base", b), ("ST2 ", s)):
            bar = ""
            for c in components:
                bar += comp_glyph[c] * int(round(width * stack.get(c, 0)))
            total = sum(stack.values())
            lines.append(f"{str(label):>{label_w}} {tag} "
                         f"|{bar:<{width}}| {total:5.2f}")
        lines.append("")
    return "\n".join(lines)


def scatter(title: str, xs, ys, x_label: str = "x", y_label: str = "y",
            width: int = 56, height: int = 18) -> str:
    """Scatter plot with a y=x guide (power-model validation)."""
    xs = np.asarray(list(xs), dtype=float)
    ys = np.asarray(list(ys), dtype=float)
    lo = min(xs.min(), ys.min())
    hi = max(xs.max(), ys.max())
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for frac in np.linspace(0, 1, max(width, height)):
        col = int(frac * (width - 1))
        row = height - 1 - int(frac * (height - 1))
        grid[row][col] = "."
    for x, y in zip(xs, ys):
        col = int((x - lo) / span * (width - 1))
        row = height - 1 - int((y - lo) / span * (height - 1))
        grid[row][col] = "o"
    lines = [title, "-" * len(title)]
    lines += ["|" + "".join(row) + "|" for row in grid]
    lines.append(f"x: {x_label} [{lo:.0f}..{hi:.0f}]  "
                 f"y: {y_label}  (. = y=x)")
    return "\n".join(lines)


def table(title: str, headers, rows, fmts=None) -> str:
    """Fixed-width text table."""
    fmts = fmts or ["{}"] * len(headers)
    rendered = [[f.format(v) for f, v in zip(fmts, row)] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rendered))
              for i, h in enumerate(headers)]
    lines = [title, "-" * len(title),
             "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for r in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
