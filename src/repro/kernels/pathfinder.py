"""Rodinia *pathfinder* — the paper's Figure 2 case-study kernel.

Dynamic programming over a 2-D grid: each thread owns one column of a
block tile and, for ``iteration`` rows, picks the cheapest of its three
upper neighbours and adds the local grid cost:

.. code-block:: c

    for (int i = 0; i < iteration; i++) {
        if ((tx >= i+1) && (tx <= BLOCK_SIZE-2-i) && isValid) {     // PC1, PC2
            int shortest = MIN(left, up);                           // PC3
            shortest = MIN(shortest, right);                        // PC5
            int index = cols * (startStep + i) + xidx;              // PC6
            result[tx] = shortest + gpuWall[index];                 // PC7
        }
    }

The seven in-loop addition PCs (including the loop increment) are the
ones whose value evolution the paper plots: costs grow smoothly with the
row index, the index PC produces large but linearly-evolving values, and
the bound computations produce small ints — each PC strongly
self-correlated, weakly cross-correlated.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK_SIZE = 128
HALO = 1


def pathfinder_kernel(k, gpu_wall, gpu_src, gpu_dst, cols, start_step,
                      iteration):
    """One pyramid step of the pathfinder DP (dynproc_kernel)."""
    tx = k.thread_id()
    small_block_cols = BLOCK_SIZE - iteration * 2 * HALO
    blk_x = small_block_cols * k.block_id - HALO
    xidx = k.iadd(blk_x, tx)
    is_valid = (xidx >= 0) & (xidx < cols)

    prev = k.shared(BLOCK_SIZE, np.int32)
    result = k.shared(BLOCK_SIZE, np.int32)

    with k.where(is_valid):
        loaded = k.ld_global(gpu_src, xidx)
        k.st_shared(prev, tx, loaded)
    k.syncthreads()

    for i in k.range(iteration):
        lower = k.iadd(i, 1)                                    # PC1
        upper = k.isub(BLOCK_SIZE - 2, i)                       # PC2
        in_range = k.ge(tx, lower) & k.le(tx, upper) & is_valid
        with k.where(in_range):
            # tx±1 fold into the LDS immediate offset on hardware (and
            # porting them as IADDs would add PCs beyond the paper's
            # Figure 2 enumeration above)
            left = k.ld_shared(prev, np.maximum(tx - 1, 0))  # st2-lint: disable=L1
            up = k.ld_shared(prev, tx)
            right = k.ld_shared(prev, np.minimum(tx + 1,     # st2-lint: disable=L1
                                                 BLOCK_SIZE - 1))
            shortest = k.imin(left, up)                         # PC3
            shortest = k.imin(shortest, right)                  # PC5
            row = k.iadd(start_step, i)
            index = k.iadd(k.imul(cols, row), xidx)             # PC6
            wall = k.ld_global(gpu_wall, index)
            k.st_shared(result, tx, k.iadd(shortest, wall))     # PC7
        k.syncthreads()
        with k.where(in_range):
            k.st_shared(prev, tx, k.ld_shared(result, tx))
        k.syncthreads()

    with k.where(is_valid):
        k.st_global(gpu_dst, xidx, k.ld_shared(result, tx))


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Build a pathfinder launch: random small step costs (0..9), the
    running path costs accumulating smoothly row by row."""
    rng = np.random.default_rng(seed)
    iteration = scaled(18, scale, minimum=4)
    grid_blocks = scaled(10, scale, minimum=2)
    rows = iteration + 1
    cols = grid_blocks * (BLOCK_SIZE - 2 * HALO * iteration)

    wall = rng.integers(0, 10, size=rows * cols).astype(np.int32)
    # src row carries costs already accumulated over earlier pyramid
    # steps — values in the hundreds, like the paper's Figure 2.
    src = (wall[:cols] + rng.integers(100, 400, cols)).astype(np.int32)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="pathfinder",
        fn=pathfinder_kernel,
        launch=LaunchConfig(grid_blocks, BLOCK_SIZE),
        params=dict(
            gpu_wall=launcher.buffer("gpuWall", wall),
            gpu_src=launcher.buffer("gpuSrc", src),
            gpu_dst=launcher.buffer("gpuDst", np.zeros(cols, np.int32)),
            cols=cols, start_step=1, iteration=iteration),
        launcher=launcher)
