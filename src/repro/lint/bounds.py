"""Static speculation-outcome bounds (the ``st2-lint bounds`` tier).

This module turns the flow tier's per-site knowledge (abstract adder
operands from :mod:`repro.lint.absint`, pinned slice carries from
:mod:`repro.lint.facts`) into **sound pre-execution bounds** on the
dynamic metrics every evaluation reports:

* ``misprediction_rate``   — mean of the per-row mispredicted flag,
* ``recompute_per_row``    — mean recomputed slices per trace row
  (the product ``misprediction_rate * recomputed_per_misprediction``),
* ``perf_overhead``        — the timing model's ``slowdown``,
* ``energy_saved``         — the power model's ``system_saving``.

The derivation has three stages:

1. **Row counting.**  A dedicated AST walk enumerates every trace-row
   emitting DSL call of the kernel body and bounds how many rows each
   site records per thread, as an integer box ``[lo, hi]`` (``hi``
   may be unbounded).  ``k.range`` trip counts are folded from module
   constants; Python branches and ``k.where`` contribute ``[0, 1]``
   factors; ``break``/``continue``/``return`` lower the floor to 0.
   Any construct the walk cannot model — an unknown ``k.<method>``,
   the handle ``k`` escaping into a call, nested function definitions
   — *bails the whole kernel to trivial bounds* (a bailed analysis
   claims nothing, mirroring the CarryFact contract).

2. **Per-site speculation outcome.**  For every 32-bit integer adder
   site the abstract interpreter summarised, each slice boundary is
   classified per (mechanism, peek) config class against the pinned
   carry and the statically known slice MSbs: *correct* (the
   prediction provably matches the true carry), *wrong* (provably
   mismatches), or *unknown*.  The ST2 adder recomputes
   ``n_slices - 1 - j_first`` slices where ``j_first`` is the first
   mismatched boundary, so a site with wrong boundaries ``W`` and
   ``lead`` leading correct boundaries mispredicts every row with
   recompute in ``[n_preds - min(W), n_preds - lead]``; an all-correct
   site never mispredicts.  FP/LEA rows and sites outside the proven
   unsigned-32 adder domain stay indeterminate (``[0, 1]`` /
   ``[0, n_preds]``).

3. **Composition.**  Kernel-level rate bounds are the extrema of the
   count-weighted average over the site boxes (vertex enumeration of
   the linear-fractional program; unbounded counts contribute their
   own value as a limit).  Objective bounds then follow from the
   model identities: ``slowdown == 0`` exactly when no row
   mispredicts (the baseline and ST2 pipelines run in lockstep
   otherwise differing only on mispredicted rows), and
   ``system_saving <= frac_max * max(0, s_max - mrec_lo * delta)``
   because the per-op adder saving is linear in the recompute rate
   and the adder datapath is at most ``frac_max`` of any op's energy.
   A kernel whose row-count upper bound is zero executes no
   adder-class instruction at all, so every metric is exactly 0.

Soundness contract: bounds hold for the default evaluation path —
``evaluation_payload`` metrics with the stock calibrated power model
and no static-peek fact overlay applied to the *headline* metrics
(facts only feed the separate ``static_peek`` ablation row).  The
``st2-fuzz`` bounds oracle enforces containment on every generated
kernel; the sweep engine's ``static_bounds`` pruning hook and the
L9/L10 info rules consume the same reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.lint.absint import (AdderSite, FunctionSummary, analyze_module,
                               is_kernel_fn, module_constants)
from repro.lint.facts import (N_BOUNDARIES, SLICE_BITS, _adder_domain,
                              site_carries)

if TYPE_CHECKING:                                   # pragma: no cover
    from repro.core.predictors import SpeculationConfig

#: widest adder geometry in any trace (LEA w64: 8 slices, 7 predictions)
MAX_RECOMPUTE = 7

#: the speculation mechanisms whose static verdicts differ; history
#: configuration (pc_index / thread_key / sm_scoped) never changes a
#: *static* verdict, so (mechanism, peek) is the full config-class key.
MECHANISMS = ("static0", "static1", "operand", "valhalla", "prev")

#: trace rows one DSL call records per execution: method -> (rows, width)
_ROW_METHODS: Mapping[str, Tuple[int, int]] = {
    "iadd": (1, 32), "isub": (1, 32), "imin": (1, 32), "imax": (1, 32),
    "fadd": (1, 23), "fsub": (1, 23), "fmin": (1, 23), "fmax": (1, 23),
    "ffma": (1, 23),
    "dadd": (1, 52), "dsub": (1, 52), "dfma": (1, 52),
    "ld_global": (1, 64), "st_global": (1, 64), "atomic_add": (1, 64),
    "warp_reduce_iadd": (5, 32), "warp_reduce_fadd": (5, 23),
}

#: integer-add kinds whose absint site summaries carry operand domains
_INT_ADD_KINDS = frozenset({"iadd", "isub", "imin", "imax", "loop-inc"})

#: DSL methods proven to record no adder rows (``_emit_inst`` only).
#: Every method NOT listed here or in ``_ROW_METHODS`` bails the
#: kernel — new DSL surface can never silently break soundness.
_ROW_FREE_METHODS = frozenset({
    "thread_id", "global_id",
    "imul", "imad", "idiv", "irem", "iand", "ior", "ixor", "shl",
    "shr", "sel", "cvt_f32", "cvt_i32",
    "lt", "le", "gt", "ge", "eq", "ne", "flt", "fgt",
    "fmul", "fdiv", "fneg", "fabs", "dmul",
    "sqrt", "rsqrt", "rcp", "sin", "cos", "exp", "log",
    "shared", "ld_shared", "st_shared", "ld_const",
    "atomic_add_shared", "syncthreads",
    "shfl_down", "shfl_up", "shfl_xor", "tensor_mma",
})

#: structural DSL forms, only legal as ``for``-iterator / ``with``-item
_STRUCTURAL_METHODS = frozenset({"range", "where", "inline"})

_CORRECT, _WRONG, _UNKNOWN = "correct", "wrong", "unknown"

#: per-site outcome names (the ISSUE's SpecBound vocabulary)
ALWAYS_CORRECT = "always-correct"
ALWAYS_MISPREDICT = "always-mispredict"
INDETERMINATE = "indeterminate"


def _n_predictions(width: int) -> int:
    """Carry predictions per row of a ``width``-bit sliced add."""
    return (width + SLICE_BITS - 1) // SLICE_BITS - 1


def class_key(mechanism: str, peek: bool) -> str:
    """Canonical key of one static config class."""
    return f"{mechanism}+peek" if peek else mechanism


CLASS_KEYS = tuple(class_key(m, p)
                   for m in MECHANISMS for p in (False, True))


# ----------------------------------------------------------------------
# interval arithmetic: integer row counts and float metric bounds
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Count:
    """Integer box ``[lo, hi]``; ``hi is None`` means unbounded."""

    lo: int
    hi: Optional[int] = None

    def times(self, other: "Count") -> "Count":
        lo = self.lo * other.lo
        if self.hi == 0 or other.hi == 0:
            return Count(lo, 0)
        if self.hi is None or other.hi is None:
            return Count(lo, None)
        return Count(lo, self.hi * other.hi)

    def scaled(self, n: int) -> "Count":
        return self.times(Count(n, n))

    def to_json(self) -> List[Optional[int]]:
        return [self.lo, self.hi]


@dataclass(frozen=True)
class Bound:
    """Closed float bound ``[lo, hi]``; ``None`` means unbounded."""

    lo: Optional[float]
    hi: Optional[float]

    def contains(self, x: float, tol: float = 1e-9) -> bool:
        if self.lo is not None and x < self.lo - tol:
            return False
        if self.hi is not None and x > self.hi + tol:
            return False
        return True

    def join(self, other: "Bound") -> "Bound":
        lo = (None if self.lo is None or other.lo is None
              else min(self.lo, other.lo))
        hi = (None if self.hi is None or other.hi is None
              else max(self.hi, other.hi))
        return Bound(lo, hi)

    def widen(self, newer: "Bound") -> "Bound":
        """Standard widening: a moving end jumps to unbounded."""
        lo = self.lo if (self.lo is not None and newer.lo is not None
                         and newer.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and newer.hi is not None
                         and newer.hi <= self.hi) else None
        return Bound(lo, hi)

    def to_json(self) -> List[Optional[float]]:
        return [self.lo, self.hi]


#: one composition entry: (count lo, count hi (None = unbounded), value)
RatioEntry = Tuple[int, Optional[int], float]


def ratio_sup(entries: Sequence[RatioEntry]) -> float:
    """Supremum of ``sum(c_i * v_i) / sum(c_i)`` over the count boxes.

    The maximand is a count-weighted average of the ``v_i``, so at an
    extremum every site with ``v`` above the optimum sits at its upper
    count and every site below at its lower count: sorting by ``v``
    descending, the optimum is among the ``n + 1`` prefix vertices.
    A site with unbounded count contributes its own ``v`` as a limit.
    When no vertex has any rows, the observed metric is 0.0 by
    convention (empty traces report zero rates).
    """
    order = sorted(entries, key=lambda e: e[2], reverse=True)
    best: Optional[float] = None
    for k in range(len(order) + 1):
        num = den = 0.0
        for i, (lo, hi, v) in enumerate(order):
            c = hi if (i < k and hi is not None) else lo
            num += c * v
            den += c
        if den > 0:
            r = num / den
            if best is None or r > best:
                best = r
    unbounded = [v for lo, hi, v in entries if hi is None]
    if unbounded:
        top = max(unbounded)
        if best is None or top > best:
            best = top
    return 0.0 if best is None else best


def ratio_inf(entries: Sequence[RatioEntry]) -> float:
    """Infimum of ``sum(c_i * v_i) / sum(c_i)`` over the count boxes.

    Mirror image of :func:`ratio_sup`.  When every count floor is zero
    the trace can be empty, whose conventional metric value is 0.0.
    """
    if all(lo == 0 for lo, _, _ in entries):
        return 0.0
    order = sorted(entries, key=lambda e: e[2])
    best: Optional[float] = None
    for k in range(len(order) + 1):
        num = den = 0.0
        for i, (lo, hi, v) in enumerate(order):
            c = hi if (i < k and hi is not None) else lo
            num += c * v
            den += c
        if den > 0:
            r = num / den
            if best is None or r < best:
                best = r
    unbounded = [v for lo, hi, v in entries if hi is None]
    if unbounded:
        low = min(unbounded)
        if best is None or low < best:
            best = low
    return 0.0 if best is None else max(0.0, best)


# ----------------------------------------------------------------------
# per-site speculation outcome
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SpecBound:
    """Sound per-row outcome bounds of one site in one config class.

    ``m`` bounds the per-row misprediction indicator; ``rec`` bounds
    the per-row recomputed-slice count.
    """

    outcome: str                     # ALWAYS_* / INDETERMINATE
    m: Tuple[float, float]
    rec: Tuple[float, float]

    def join(self, other: "SpecBound") -> "SpecBound":
        outcome = (self.outcome if self.outcome == other.outcome
                   else INDETERMINATE)
        return SpecBound(
            outcome,
            (min(self.m[0], other.m[0]), max(self.m[1], other.m[1])),
            (min(self.rec[0], other.rec[0]),
             max(self.rec[1], other.rec[1])))


def _trivial_spec(width: int) -> SpecBound:
    return SpecBound(INDETERMINATE, (0.0, 1.0),
                     (0.0, float(_n_predictions(width))))


def _boundary_verdict(mechanism: str, carry: Optional[int],
                      msb_a: Optional[int],
                      msb_b: Optional[int]) -> str:
    """Classify one slice boundary's base prediction statically.

    ``carry`` is the pinned true carry out of the slice (None when
    unproven); ``msb_a`` / ``msb_b`` are the statically known MSbs of
    the slice in the recorded adder domain.  Both-one MSbs generate
    the carry and both-zero MSbs kill it, which is what makes the
    operand (CASA) and Peek cases decidable without a pinned carry.
    """
    if mechanism == "static0":
        if carry == 0:
            return _CORRECT
        return _WRONG if carry == 1 else _UNKNOWN
    if mechanism == "static1":
        if carry == 1:
            return _CORRECT
        return _WRONG if carry == 0 else _UNKNOWN
    if mechanism == "operand":
        if carry == 0:
            # both-one MSbs would force carry 1, so the prediction
            # (msb_a & msb_b) is provably 0 == carry.
            return _CORRECT
        if carry == 1:
            if msb_a == 1 and msb_b == 1:
                return _CORRECT
            if msb_a == 0 or msb_b == 0:
                return _WRONG
            return _UNKNOWN
        if msb_a is not None and msb_a == msb_b:
            # equal MSbs decide the carry (generate/kill) and the
            # prediction alike: 1&1 predicts the generated carry,
            # 0&0 predicts the killed one.
            return _CORRECT
        return _UNKNOWN
    # valhalla / prev: runtime history state is not modelled
    return _UNKNOWN


def _apply_peek(verdict: str, msb_a: Optional[int],
                msb_b: Optional[int]) -> str:
    """Overlay the Peek rule: when the slice MSbs agree at runtime the
    overlay replaces the prediction with the true carry (both-one
    generates, both-zero kills), so a firing Peek is always correct."""
    if msb_a is not None and msb_b is not None:
        return _CORRECT if msb_a == msb_b else verdict
    # Peek may or may not fire: a provably-wrong base prediction can
    # be silently fixed, so "wrong" degrades to "unknown".
    return _UNKNOWN if verdict == _WRONG else verdict


def _site_spec(site: AdderSite, mechanism: str,
               peek: bool) -> Optional[SpecBound]:
    """Outcome bound of one absint adder site, or None when the site
    cannot be mapped into the proven unsigned-32 adder domain."""
    dom = _adder_domain(site)
    if dom is None:
        return None
    a, b, _cin = dom
    pinned = site_carries(site) or {}
    abits, bbits = a.all_bits(), b.all_bits()
    verdicts: List[str] = []
    for j in range(N_BOUNDARIES):
        msb = SLICE_BITS * (j + 1) - 1
        ma, mb = abits.bit(msb), bbits.bit(msb)
        verdict = _boundary_verdict(mechanism, pinned.get(j), ma, mb)
        if peek:
            verdict = _apply_peek(verdict, ma, mb)
        verdicts.append(verdict)
    wrong = [j for j, v in enumerate(verdicts) if v == _WRONG]
    lead = 0
    while lead < len(verdicts) and verdicts[lead] == _CORRECT:
        lead += 1
    n_preds = N_BOUNDARIES
    if wrong:
        # the first actual mismatch j_first satisfies
        # lead <= j_first <= min(wrong); recompute = n_preds - j_first
        return SpecBound(
            ALWAYS_MISPREDICT, (1.0, 1.0),
            (float(n_preds - min(wrong)), float(n_preds - lead)))
    if lead == n_preds:
        return SpecBound(ALWAYS_CORRECT, (0.0, 0.0), (0.0, 0.0))
    return SpecBound(INDETERMINATE, (0.0, 1.0),
                     (0.0, float(n_preds - lead)))


def _group_spec(group: Sequence[AdderSite], width: int,
                mechanism: str, peek: bool) -> SpecBound:
    """Hull over every absint site sharing one (line, kind) — a trace
    row at the line may come from any of them."""
    if width != 32 or not group:
        return _trivial_spec(width)
    spec: Optional[SpecBound] = None
    for site in group:
        one = _site_spec(site, mechanism, peek)
        if one is None:
            return _trivial_spec(width)
        spec = one if spec is None else spec.join(one)
    assert spec is not None
    return spec


# ----------------------------------------------------------------------
# row counting (AST walk)
# ----------------------------------------------------------------------

class BoundsBail(Exception):
    """The kernel contains a construct the row walk cannot model."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


@dataclass
class _RawSite:
    lineno: int
    kind: str
    width: int
    lo: int
    hi: Optional[int]


class _RowWalker(ast.NodeVisitor):
    """Enumerates row-emitting DSL calls with per-thread count boxes."""

    def __init__(self, consts: Mapping[str, object]) -> None:
        self.consts = consts
        self.sites: List[_RawSite] = []
        self.zero_floor = False

    # -- entry point ---------------------------------------------------

    def walk_function(self, fn: ast.FunctionDef) -> None:
        self._stmts(fn.body, Count(1, 1))
        if self.zero_floor:
            for site in self.sites:
                site.lo = 0

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _k_method(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "k":
            return func.attr
        return None

    def _const_int(self, node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool):
                return int(value)
            return value if isinstance(value, int) else None
        if isinstance(node, ast.Name):
            value = self.consts.get(node.id)
            if isinstance(value, bool):
                return int(value)
            return value if isinstance(value, int) else None
        if isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, ast.USub):
            v = self._const_int(node.operand)
            return None if v is None else -v
        if isinstance(node, ast.BinOp):
            a = self._const_int(node.left)
            b = self._const_int(node.right)
            if a is None or b is None:
                return None
            if isinstance(node.op, ast.Add):
                return a + b
            if isinstance(node.op, ast.Sub):
                return a - b
            if isinstance(node.op, ast.Mult):
                return a * b
            if isinstance(node.op, ast.FloorDiv) and b != 0:
                return a // b
            return None
        return None

    def _range_trips(self, call: ast.Call) -> Count:
        if call.keywords or not 1 <= len(call.args) <= 3:
            return Count(0, None)
        args = [self._const_int(a) for a in call.args]
        if any(a is None for a in args):
            return Count(0, None)
        ints = [a for a in args if a is not None]
        if len(ints) == 3 and ints[2] == 0:
            return Count(0, None)
        trips = len(range(*ints))
        return Count(trips, trips)

    def _host_trips(self, node: ast.expr) -> Count:
        if isinstance(node, (ast.Tuple, ast.List)):
            if any(isinstance(e, ast.Starred) for e in node.elts):
                return Count(0, None)
            return Count(len(node.elts), len(node.elts))
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "range":
            return self._range_trips(node)
        return Count(0, None)

    def _scan_args(self, call: ast.Call, mult: Count) -> None:
        for arg in call.args:
            self._expr(arg, mult)
        for kw in call.keywords:
            self._expr(kw.value, mult)

    # -- expressions ---------------------------------------------------

    def _expr(self, node: ast.expr, mult: Count) -> None:
        if isinstance(node, ast.Call):
            method = self._k_method(node.func)
            if method is not None:
                if method in _ROW_METHODS:
                    rows, width = _ROW_METHODS[method]
                    count = mult.scaled(rows)
                    self.sites.append(_RawSite(
                        node.lineno, method, width,
                        count.lo, count.hi))
                    self._scan_args(node, mult)
                    return
                if method in _ROW_FREE_METHODS:
                    self._scan_args(node, mult)
                    return
                if method in _STRUCTURAL_METHODS:
                    raise BoundsBail(
                        f"k.{method}() outside its structural position "
                        f"(line {node.lineno})")
                raise BoundsBail(
                    f"unmodelled DSL call k.{method}() "
                    f"(line {node.lineno})")
            self._expr(node.func, mult)
            self._scan_args(node, mult)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id == "k":
                return                          # attribute read: row-free
            self._expr(node.value, mult)
            return
        if isinstance(node, ast.Name):
            if node.id == "k":
                raise BoundsBail(
                    f"kernel handle escapes the analysed body "
                    f"(line {node.lineno})")
            return
        if isinstance(node, ast.BoolOp):
            self._expr(node.values[0], mult)
            half = mult.times(Count(0, 1))
            for value in node.values[1:]:
                self._expr(value, half)
            return
        if isinstance(node, ast.IfExp):
            self._expr(node.test, mult)
            half = mult.times(Count(0, 1))
            self._expr(node.body, half)
            self._expr(node.orelse, half)
            return
        if isinstance(node, ast.Lambda):
            raise BoundsBail(
                f"nested lambda (line {node.lineno})")
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            loopy = mult.times(Count(0, None))
            for i, comp in enumerate(node.generators):
                self._expr(comp.iter, mult if i == 0 else loopy)
                for cond in comp.ifs:
                    self._expr(cond, loopy)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child, loopy)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, mult)
            elif isinstance(child, ast.keyword):
                self._expr(child.value, mult)
        return

    # -- statements ----------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt],
               mult: Count) -> Tuple[bool, bool]:
        saw_break = saw_continue = False
        for stmt in body:
            brk, cont = self._stmt(stmt, mult)
            saw_break = saw_break or brk
            saw_continue = saw_continue or cont
        return saw_break, saw_continue

    def _stmt(self, stmt: ast.stmt,
              mult: Count) -> Tuple[bool, bool]:
        if isinstance(stmt, ast.Break):
            return True, False
        if isinstance(stmt, ast.Continue):
            return False, True
        if isinstance(stmt, ast.For):
            self._for(stmt, mult)
            return False, False
        if isinstance(stmt, ast.While):
            loopy = mult.times(Count(0, None))
            self._expr(stmt.test, loopy)
            self._stmts(stmt.body, loopy)
            self._stmts(stmt.orelse, mult.times(Count(0, 1)))
            return False, False
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, mult)
            half = mult.times(Count(0, 1))
            b1, c1 = self._stmts(stmt.body, half)
            b2, c2 = self._stmts(stmt.orelse, half)
            return b1 or b2, c1 or c2
        if isinstance(stmt, ast.With):
            return self._with(stmt, mult)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            self.zero_floor = True
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, mult)
            return False, False
        if isinstance(stmt, ast.Try):
            self.zero_floor = True
            flags = self._stmts(stmt.body, mult)
            half = mult.times(Count(0, 1))
            for handler in stmt.handlers:
                b, c = self._stmts(handler.body, half)
                flags = (flags[0] or b, flags[1] or c)
            for extra in (stmt.orelse, stmt.finalbody):
                b, c = self._stmts(extra, mult)
                flags = (flags[0] or b, flags[1] or c)
            return flags
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.AsyncFor, ast.AsyncWith,
                             ast.Match)):
            raise BoundsBail(
                f"unmodelled statement {type(stmt).__name__} "
                f"(line {stmt.lineno})")
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                             ast.Import, ast.ImportFrom)):
            return False, False
        # Expr / Assign / AugAssign / AnnAssign / Delete / ...
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, mult)
        return False, False

    def _for(self, node: ast.For, mult: Count) -> None:
        iter_call = node.iter if isinstance(node.iter, ast.Call) else None
        is_krange = (iter_call is not None
                     and self._k_method(iter_call.func) == "range")
        if is_krange:
            assert iter_call is not None
            self._scan_args(iter_call, mult)
            trips = self._range_trips(iter_call)
        else:
            self._expr(node.iter, mult)
            trips = self._host_trips(node.iter)
        body_mult = mult.times(trips)
        start = len(self.sites)
        brk, cont = self._stmts(node.body, body_mult)
        if cont:
            # a skipped tail iteration lowers body floors, but the
            # loop increment of a k.range still fires
            for site in self.sites[start:]:
                site.lo = 0
        if is_krange:
            # the iterator increment is a real IADD row, emitted after
            # each completed iteration (a break skips that emission)
            self.sites.append(_RawSite(
                node.lineno, "loop-inc", 32,
                body_mult.lo, body_mult.hi))
        if brk:
            for site in self.sites[start:]:
                site.lo = 0
        if node.orelse:
            self._stmts(node.orelse, mult.times(Count(0, 1)))

    def _with(self, node: ast.With,
              mult: Count) -> Tuple[bool, bool]:
        body_mult = mult
        for item in node.items:
            expr = item.context_expr
            method = (self._k_method(expr.func)
                      if isinstance(expr, ast.Call) else None)
            if method == "where":
                assert isinstance(expr, ast.Call)
                self._scan_args(expr, mult)
                body_mult = body_mult.times(Count(0, 1))
            elif method == "inline":
                assert isinstance(expr, ast.Call)
                self._scan_args(expr, mult)
            else:
                raise BoundsBail(
                    f"unsupported with-context (line {node.lineno})")
        return self._stmts(node.body, body_mult)


# ----------------------------------------------------------------------
# model constants
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BoundConstants:
    """Power/circuit constants the objective bounds are stated in.

    ``s_max`` is the zero-miss adder datapath saving, ``delta`` the
    saving lost per recomputed slice per row, ``frac_max`` the largest
    adder fraction of any op subtype, and ``floor_ok`` whether the
    per-op saving exceeds the DFF + level-shifter overhead for every
    subtype (needed to claim ``system_saving >= 0`` at zero misses).
    """

    s_max: float
    delta: float
    frac_max: float
    floor_ok: bool


_CONSTANTS: List[Optional[BoundConstants]] = [None]


def bound_constants(power_model: object = None,
                    adder_model: object = None) -> BoundConstants:
    """Constants for the default model bundle (memoised), or for an
    explicitly supplied (power model, adder model) pair."""
    defaults = power_model is None and adder_model is None
    if defaults and _CONSTANTS[0] is not None:
        return _CONSTANTS[0]
    from repro.power.calibration import calibrated_model
    from repro.power.components import MODEL_ALU_SUBTYPE_PJ, Component
    from repro.st2.architecture import default_adder_model
    from repro.st2.energy import ADDER_FRACTION

    pm = power_model if power_model is not None \
        else calibrated_model(seed=0)
    am = adder_model if adder_model is not None \
        else default_adder_model()
    s_max = float(am.saving(0.0, 0.0))          # type: ignore[attr-defined]
    delta = float(am.slice_recompute_fj         # type: ignore[attr-defined]
                  / am.reference_fj)            # type: ignore[attr-defined]
    frac_max = max(ADDER_FRACTION.values())
    overhead_j = (am.dff_fj                     # type: ignore[attr-defined]
                  + am.level_shifter_fj) * 1e-15  # type: ignore[attr-defined]
    scale = float(pm.scales[Component.ALU_FPU])  # type: ignore[attr-defined]
    floor_ok = all(
        MODEL_ALU_SUBTYPE_PJ[sub] * 1e-12 * scale * frac * s_max
        >= 2.0 * overhead_j
        for sub, frac in ADDER_FRACTION.items())
    constants = BoundConstants(s_max, delta, frac_max, floor_ok)
    if defaults:
        _CONSTANTS[0] = constants
    return constants


# ----------------------------------------------------------------------
# kernel reports
# ----------------------------------------------------------------------

@dataclass
class SiteBounds:
    """One counted row source with its per-class outcome bounds."""

    lineno: int
    kind: str
    width: int
    count: Count
    spec: Dict[str, SpecBound] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        static = {key: sb.outcome
                  for key, sb in sorted(self.spec.items())
                  if sb.outcome != INDETERMINATE}
        return {"line": self.lineno, "kind": self.kind,
                "width": self.width, "rows": self.count.to_json(),
                "static": static}


@dataclass(frozen=True)
class ClassBounds:
    """Kernel-level metric bounds for one (mechanism, peek) class."""

    mechanism: str
    peek: bool
    mis: Bound
    mrec: Bound
    over: Bound
    saved: Bound

    @property
    def key(self) -> str:
        return class_key(self.mechanism, self.peek)

    def to_json(self) -> Dict[str, object]:
        return {
            "misprediction_rate": self.mis.to_json(),
            "recompute_per_row": self.mrec.to_json(),
            "perf_overhead": self.over.to_json(),
            "energy_saved": self.saved.to_json(),
        }


@dataclass
class KernelBoundsReport:
    """Sound speculation-outcome bounds for one kernel function."""

    function: str
    path: str
    lineno: int
    trivial: bool
    bail_reason: Optional[str]
    rows: Count
    sites: List[SiteBounds]
    classes: Dict[str, ClassBounds]

    def bounds_for(self, mechanism: str, peek: bool) -> ClassBounds:
        return self.classes[class_key(mechanism, peek)]

    def bounds_for_config(
            self, config: "SpeculationConfig") -> ClassBounds:
        """Bounds for any concrete design point: only the mechanism
        and the Peek retrofit matter statically."""
        return self.bounds_for(config.mechanism, config.peek)

    def to_json(self) -> Dict[str, object]:
        return {
            "line": self.lineno,
            "trivial": self.trivial,
            "bail_reason": self.bail_reason,
            "rows": self.rows.to_json(),
            "sites": [site.to_json() for site in self.sites],
            "bounds": {key: self.classes[key].to_json()
                       for key in sorted(self.classes)},
        }


def _trivial_classes() -> Dict[str, ClassBounds]:
    out: Dict[str, ClassBounds] = {}
    for mech in MECHANISMS:
        for peek in (False, True):
            out[class_key(mech, peek)] = ClassBounds(
                mech, peek,
                mis=Bound(0.0, 1.0),
                mrec=Bound(0.0, float(MAX_RECOMPUTE)),
                over=Bound(0.0, None),
                saved=Bound(None, 1.0))
    return out


def trivial_report(function: str, path: str, lineno: int,
                   reason: str) -> KernelBoundsReport:
    """A bailed analysis claims nothing beyond the trivial bounds."""
    return KernelBoundsReport(
        function=function, path=path, lineno=lineno, trivial=True,
        bail_reason=reason, rows=Count(0, None), sites=[],
        classes=_trivial_classes())


def _compose_class(sites: Sequence[SiteBounds], rows: Count,
                   mechanism: str, peek: bool,
                   constants: BoundConstants) -> ClassBounds:
    key = class_key(mechanism, peek)
    if rows.hi == 0:
        # no adder-class instruction ever executes: the trace is
        # row-free, the fine add counts are zero, the pipelines run in
        # lockstep — every metric is exactly 0.
        zero = Bound(0.0, 0.0)
        return ClassBounds(mechanism, peek, zero, zero, zero, zero)
    mis = Bound(
        ratio_inf([(s.count.lo, s.count.hi, s.spec[key].m[0])
                   for s in sites]),
        ratio_sup([(s.count.lo, s.count.hi, s.spec[key].m[1])
                   for s in sites]))
    mrec = Bound(
        ratio_inf([(s.count.lo, s.count.hi, s.spec[key].rec[0])
                   for s in sites]),
        ratio_sup([(s.count.lo, s.count.hi, s.spec[key].rec[1])
                   for s in sites]))
    if mis.hi == 0.0:
        over = Bound(0.0, 0.0)
        saved_lo: Optional[float] = \
            0.0 if constants.floor_ok else None
    else:
        over = Bound(0.0, None)
        saved_lo = None
    mrec_lo = mrec.lo if mrec.lo is not None else 0.0
    saved_hi = constants.frac_max * max(
        0.0, constants.s_max - mrec_lo * constants.delta)
    return ClassBounds(mechanism, peek, mis, mrec, over,
                       Bound(saved_lo, saved_hi))


def kernel_bounds(fn: ast.FunctionDef, summary: FunctionSummary,
                  consts: Mapping[str, object],
                  path: str) -> KernelBoundsReport:
    """The bounds report of one kernel function."""
    if summary.bailed:
        return trivial_report(fn.name, path, fn.lineno,
                              f"absint bailed: {summary.reason}")
    walker = _RowWalker(consts)
    try:
        walker.walk_function(fn)
    except BoundsBail as bail:
        return trivial_report(fn.name, path, fn.lineno, bail.reason)
    except RecursionError:
        return trivial_report(fn.name, path, fn.lineno,
                              "row walk recursion limit")
    groups: Dict[Tuple[int, str], List[AdderSite]] = {}
    for adder_site in summary.adder_sites:
        groups.setdefault(
            (adder_site.lineno, adder_site.kind), []).append(adder_site)
    sites: List[SiteBounds] = []
    for raw in walker.sites:
        site = SiteBounds(raw.lineno, raw.kind, raw.width,
                          Count(raw.lo, raw.hi))
        group = (groups.get((raw.lineno, raw.kind), [])
                 if raw.kind in _INT_ADD_KINDS else [])
        for mech in MECHANISMS:
            for peek in (False, True):
                site.spec[class_key(mech, peek)] = _group_spec(
                    group, raw.width, mech, peek)
        sites.append(site)
    rows_lo = sum(s.count.lo for s in sites)
    rows_hi: Optional[int] = 0
    for s in sites:
        if rows_hi is None or s.count.hi is None:
            rows_hi = None
        else:
            rows_hi += s.count.hi
    rows = Count(rows_lo, rows_hi)
    constants = bound_constants()
    classes = {
        class_key(mech, peek): _compose_class(
            sites, rows, mech, peek, constants)
        for mech in MECHANISMS for peek in (False, True)
    }
    return KernelBoundsReport(
        function=fn.name, path=path, lineno=fn.lineno, trivial=False,
        bail_reason=None, rows=rows, sites=sites, classes=classes)


def module_bounds(tree: ast.Module,
                  path: str = "<string>"
                  ) -> Dict[str, KernelBoundsReport]:
    """Reports for every top-level kernel function of one module."""
    consts = module_constants(tree)
    summaries = analyze_module(tree, path)
    out: Dict[str, KernelBoundsReport] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and is_kernel_fn(node):
            out[node.name] = kernel_bounds(
                node, summaries[node.name], consts, path)
    return out


def module_bounds_from_source(src: str, path: str = "<string>"
                              ) -> Dict[str, KernelBoundsReport]:
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return {}
    return module_bounds(tree, path)


def collect_bounds_payload(paths: Sequence[str]) -> Dict[str, object]:
    """The ``st2-lint bounds --json`` document: versioned, sorted and
    byte-stable for a fixed input set (order-independent)."""
    from pathlib import Path

    files: List[Path] = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    modules: Dict[str, Dict[str, object]] = {}
    n_kernels = n_trivial = 0
    for file in sorted(set(files), key=str):
        try:
            src = file.read_text()
        except OSError:
            continue
        reports = module_bounds_from_source(src, str(file))
        if not reports:
            continue
        modules[str(file)] = {name: report.to_json()
                              for name, report in sorted(reports.items())}
        n_kernels += len(reports)
        n_trivial += sum(r.trivial for r in reports.values())
    return {"version": 1, "kernels": n_kernels, "trivial": n_trivial,
            "modules": modules}


# ----------------------------------------------------------------------
# kernel-suite resolution (for the sweep engine / fuzz oracle)
# ----------------------------------------------------------------------

_MODULE_CACHE: Dict[str, Dict[str, KernelBoundsReport]] = {}
_KERNEL_CACHE: Dict[str, Optional[KernelBoundsReport]] = {}


def _prepared_fn_name(tree: ast.Module,
                      prepare_name: str) -> Optional[str]:
    """The kernel function a suite ``prepare`` wires up, read off the
    ``fn=`` keyword of its ``PreparedKernel(...)`` call."""
    for node in tree.body:
        if not (isinstance(node, ast.FunctionDef)
                and node.name == prepare_name):
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name != "PreparedKernel":
                continue
            for kw in call.keywords:
                if kw.arg == "fn" and isinstance(kw.value, ast.Name):
                    return kw.value.id
    return None


def bounds_for_module(path: str) -> Dict[str, KernelBoundsReport]:
    """Reports for one kernel module file (memoised per path)."""
    cached = _MODULE_CACHE.get(path)
    if cached is None:
        try:
            with open(path, "r") as fh:
                src = fh.read()
        except OSError:
            cached = {}
        else:
            cached = module_bounds_from_source(src, path)
        _MODULE_CACHE[path] = cached
    return cached


def bounds_for_kernel(kernel_name: str
                      ) -> Optional[KernelBoundsReport]:
    """Static bounds for a named suite kernel, or None when the
    kernel function cannot be resolved (consumers must then claim
    nothing, exactly as for a trivial report)."""
    if kernel_name in _KERNEL_CACHE:
        return _KERNEL_CACHE[kernel_name]
    report = _resolve_kernel_report(kernel_name)
    _KERNEL_CACHE[kernel_name] = report
    return report


def _resolve_kernel_report(kernel_name: str
                           ) -> Optional[KernelBoundsReport]:
    import inspect

    from repro.kernels.suite import spec_by_name

    try:
        spec = spec_by_name(kernel_name)
    except KeyError:
        return None
    module = inspect.getmodule(spec.prepare)
    if module is None:
        return None
    try:
        path = inspect.getsourcefile(module)
    except TypeError:
        return None
    if not path:
        return None
    try:
        with open(path, "r") as fh:
            src = fh.read()
    except OSError:
        return None
    try:
        tree = ast.parse(src, filename=path)
    except SyntaxError:
        return None
    fn_name = _prepared_fn_name(tree, spec.prepare.__name__)
    if fn_name is None:
        return None
    return bounds_for_module(path).get(fn_name)


__all__ = [
    "ALWAYS_CORRECT", "ALWAYS_MISPREDICT", "INDETERMINATE",
    "Bound", "BoundConstants", "BoundsBail", "CLASS_KEYS",
    "ClassBounds", "Count", "KernelBoundsReport", "MAX_RECOMPUTE",
    "MECHANISMS", "SiteBounds", "SpecBound",
    "bound_constants", "bounds_for_kernel", "bounds_for_module",
    "class_key", "collect_bounds_payload", "kernel_bounds",
    "module_bounds", "module_bounds_from_source", "ratio_inf",
    "ratio_sup", "trivial_report",
]
