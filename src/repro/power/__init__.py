"""GPUWattch-style power modelling: Eq. (1), the 123-stressor
calibration workflow against synthetic silicon, and validation.

Exports are lazy (PEP 562): importing :mod:`repro.power` costs nothing
until a name is touched.
"""

from repro._lazy import lazy_attrs

_LAZY_EXPORTS = {
    "ActivityVector": ("repro.power.activity", "ActivityVector"),
    "Component": ("repro.power.components", "Component"),
    "GPUPowerModel": ("repro.power.model", "GPUPowerModel"),
    "PowerExtensions": ("repro.power.extended", "PowerExtensions"),
    "RegFileParams": ("repro.power.extended", "RegFileParams"),
    "SchedulerParams": ("repro.power.extended", "SchedulerParams"),
    "SyntheticSilicon": ("repro.power.hardware", "SyntheticSilicon"),
    "activity_from_run": ("repro.power.activity", "activity_from_run"),
    "calibrate": ("repro.power.calibration", "calibrate"),
    "calibrated_model": ("repro.power.calibration", "calibrated_model"),
    "validate": ("repro.power.validation", "validate"),
}

__all__ = sorted(_LAZY_EXPORTS)

__getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY_EXPORTS)
