"""``st2-fuzz`` — differential fuzzing of the ST2 stack.

Subcommands:

* ``run`` — generate ``--budget`` kernels from ``--seed`` and drive
  the five-way oracle over each; failures are delta-debugged to
  minimal reproducers and optionally saved as corpus fixtures.
* ``replay`` — re-check committed corpus fixtures (all oracles; a
  healthy corpus is green).
* ``gen`` — print generated kernels without checking them (corpus
  inspection, generator debugging).

Follows the shared CLI contract (:mod:`repro.cli_common`): exit ``0``
clean, ``1`` when any oracle failed or a fixture regressed, ``2`` on
usage errors; ``--json`` emits one machine-readable document.
"""

from __future__ import annotations

import argparse
import itertools
import sys
import tempfile
import time
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Sequence)

from repro.cli_common import (EXIT_OK, EXIT_PROBLEMS, add_json_flag,
                              build_parser, emit_json, fail, run_cli)
from repro.fuzz import corpus as corpus_mod
from repro.fuzz import shrink as shrink_mod
from repro.fuzz.gen import (FuzzProfile, GeneratedKernel, derive_stream,
                            generate_kernel)
from repro.fuzz.harness import bundle_for, materialize
from repro.fuzz.kast import Program
from repro.fuzz.oracles import (DEFAULT_CONFIGS, ORACLES, KernelVerdict,
                                OracleFailure, check_kernel)

PROG = "st2-fuzz"


# ----------------------------------------------------------------------
# checking one kernel (crash-safe)
# ----------------------------------------------------------------------

def _verdict_for(bundle: Any, configs: Sequence[Any], models: Any,
                 oracles: Sequence[str],
                 adder_seed: int) -> KernelVerdict:
    """A kernel that crashes the harness is itself a finding, not an
    abort of the campaign."""
    try:
        return check_kernel(bundle, configs, models=models,
                            oracles=oracles, adder_seed=adder_seed)
    except Exception as exc:
        verdict = KernelVerdict(name=bundle.name)
        verdict.failures.append(OracleFailure(
            "crash", f"{type(exc).__name__}: {exc}",
            {"type": type(exc).__name__}))
        return verdict


def _failure_keys(verdict: KernelVerdict) -> set:
    return {(f.oracle, f.details.get("type", ""))
            if f.oracle == "crash" else (f.oracle, "")
            for f in verdict.failures}


def _make_predicate(kernel: GeneratedKernel, failed_keys: set,
                    configs: Sequence[Any], models: Any, workdir: str,
                    counter: "Iterator[int]",
                    adder_seed: int) -> Callable[[Program], bool]:
    """*Does a candidate still fail the same oracle?* — the shrinker's
    predicate.  Each candidate gets a fresh filename so ``linecache``
    and PC labels never alias across attempts."""
    # run only the oracle passes that can produce the observed failure
    # kinds ("static" failures come from the fact check AND from the
    # sanitizer-contract pass, which cross-checks flow-proven claims)
    producers = {"engine": ("engine",), "adder": ("adder",),
                 "static": ("static", "sanitizer"),
                 "sanitizer": ("sanitizer",),
                 "bounds": ("bounds",)}
    oracles = tuple(sorted({pass_ for key in failed_keys
                            for pass_ in producers.get(key[0], ORACLES)
                            })) or ORACLES

    def still_fails(program: Program) -> bool:
        filename = f"cand{next(counter)}.py"
        bundle = materialize(program.render(), kernel.name, workdir,
                             filename=filename)
        bundle.blocks = kernel.blocks
        bundle.threads = kernel.threads
        bundle.data_seed = kernel.data_seed
        verdict = _verdict_for(bundle, configs, models, oracles,
                               adder_seed)
        return bool(_failure_keys(verdict) & failed_keys)

    return still_fails


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------

def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runner.units import ModelBundle, resolve_configs

    try:
        configs = resolve_configs(args.configs)
    except KeyError as exc:
        return fail(PROG, f"unknown config: {exc}")
    oracles = tuple(s for s in args.oracles.split(",") if s)
    unknown = [o for o in oracles if o not in ORACLES]
    if unknown:
        return fail(PROG, f"unknown oracle(s): {', '.join(unknown)} "
                          f"(choose from {', '.join(ORACLES)})")
    models = ModelBundle()
    profile = FuzzProfile()
    counter = itertools.count()
    t0 = time.monotonic()  # st2-lint: disable=L5 — wall-clock CI budget, never cached
    checked = 0
    checks: Dict[str, int] = {}
    skips: Dict[str, int] = {}
    failures: List[Dict[str, Any]] = []
    timed_out = False
    with tempfile.TemporaryDirectory(prefix="st2fuzz-") as workdir:
        for index in range(args.budget):
            now = time.monotonic()  # st2-lint: disable=L5 — wall-clock CI budget
            if args.max_seconds and now - t0 > args.max_seconds:
                timed_out = True
                break
            kernel = generate_kernel(args.seed, index, profile)
            bundle = bundle_for(kernel, workdir,
                                filename=f"k{index}.py")
            adder_seed = derive_stream(args.seed, index, "rows")
            verdict = _verdict_for(bundle, configs, models, oracles,
                                   adder_seed)
            checked += 1
            for name, count in verdict.checks.items():
                checks[name] = checks.get(name, 0) + count
            for reason in verdict.skips.values():
                skips[reason] = skips.get(reason, 0) + 1
            if verdict.ok:
                continue
            failures.append(_handle_failure(
                args, kernel, verdict, configs, models, workdir,
                counter, adder_seed))
            if not args.json:
                entry = failures[-1]
                print(f"FAIL {kernel.name}: "
                      f"{verdict.failures[0].message}", file=sys.stderr)
                if entry.get("fixture_path"):
                    print(f"  fixture: {entry['fixture_path']}",
                          file=sys.stderr)
    elapsed = time.monotonic() - t0  # st2-lint: disable=L5 — wall-clock CI budget, never cached
    report = {
        "seed": args.seed,
        "budget": args.budget,
        "checked": checked,
        "timed_out": timed_out,
        "elapsed_s": round(elapsed, 3),
        "configs": [c.name for c in configs],
        "oracles": list(oracles),
        "checks": checks,
        "skips": skips,
        "failed": len(failures),
        "failures": failures,
    }
    if args.json:
        emit_json(report)
    else:
        status = "FAIL" if failures else "ok"
        note = " (time budget hit)" if timed_out else ""
        print(f"{PROG}: {status} — {checked}/{args.budget} kernels"
              f"{note}, {len(failures)} failing, "
              f"{elapsed:.1f}s, seed {args.seed}")
        for name, count in sorted(checks.items()):
            print(f"  {name}: {count}")
        for reason, count in sorted(skips.items()):
            print(f"  skip[{reason}]: {count}")
    return EXIT_PROBLEMS if failures else EXIT_OK


def _handle_failure(args: argparse.Namespace, kernel: GeneratedKernel,
                    verdict: KernelVerdict, configs: Sequence[Any],
                    models: Any, workdir: str,
                    counter: "Iterator[int]",
                    adder_seed: int) -> Dict[str, Any]:
    """Minimize one failing kernel and (optionally) save a fixture."""
    entry: Dict[str, Any] = {
        "kernel": kernel.name,
        "index": kernel.index,
        "failures": [f.to_dict() for f in verdict.failures],
        "source": kernel.source,
    }
    program = kernel.program
    if not args.no_minimize:
        predicate = _make_predicate(kernel, _failure_keys(verdict),
                                    configs, models, workdir, counter,
                                    adder_seed)
        outcome = shrink_mod.minimize(program, predicate,
                                      max_evals=args.shrink_evals)
        program = outcome.program
        entry["minimized_source"] = program.render()
        entry["shrink"] = {"from": outcome.reduced_from,
                           "to": outcome.size,
                           "evaluations": outcome.evaluations}
    if args.save_failures:
        fixture = corpus_mod.Fixture(
            name=kernel.name, oracle=verdict.failures[0].oracle,
            seed=adder_seed,
            description=verdict.failures[0].message.splitlines()[0],
            source=program.render(), blocks=kernel.blocks,
            threads=kernel.threads, data_seed=kernel.data_seed,
            configs=args.configs)
        entry["fixture_path"] = corpus_mod.save_fixture(
            fixture, args.save_failures)
    return entry


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------

def _cmd_replay(args: argparse.Namespace) -> int:
    paths = list(args.paths) or corpus_mod.corpus_paths(
        corpus_mod.CORPUS_DIR)
    results: List[Dict[str, Any]] = []
    bad = 0
    with tempfile.TemporaryDirectory(prefix="st2fuzz-") as workdir:
        for i, path in enumerate(paths):
            try:
                fixture = corpus_mod.load_fixture(path)
            except (OSError, KeyError, ValueError) as exc:
                return fail(PROG, f"unreadable fixture {path}: {exc}")
            verdict = corpus_mod.replay_fixture(
                fixture, workdir, filename=f"fx{i}.py")
            results.append({"path": path, "name": fixture.name,
                            "oracle": fixture.oracle,
                            **verdict.to_dict()})
            if not verdict.ok:
                bad += 1
                if not args.json:
                    for failure in verdict.failures:
                        print(f"FAIL {path}: {failure.message}",
                              file=sys.stderr)
    if args.json:
        emit_json({"fixtures": len(paths), "failed": bad,
                   "results": results})
    else:
        print(f"{PROG}: replayed {len(paths)} fixture(s), "
              f"{bad} failing")
    return EXIT_PROBLEMS if bad else EXIT_OK


# ----------------------------------------------------------------------
# gen
# ----------------------------------------------------------------------

def _cmd_gen(args: argparse.Namespace) -> int:
    kernels = [generate_kernel(args.seed, args.index + i)
               for i in range(args.count)]
    if args.json:
        emit_json({"seed": args.seed, "kernels": [
            {"name": k.name, "index": k.index, "source": k.source,
             "launch": {"blocks": k.blocks, "threads": k.threads},
             "data_seed": k.data_seed} for k in kernels]})
    else:
        for k in kernels:
            print(f"# {k.name} — blocks={k.blocks} "
                  f"threads={k.threads} data_seed={k.data_seed}")
            print(k.source)
    return EXIT_OK


# ----------------------------------------------------------------------
# parser / entry points
# ----------------------------------------------------------------------

def parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = build_parser(
        PROG, "Differential fuzzing of the ST2 reproduction: "
              "generated DSL kernels cross-checked by the engine, "
              "static-facts, adder, sanitizer-contract and "
              "static-bounds oracles.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="fuzz a seeded kernel batch")
    p_run.add_argument("--seed", type=int, default=0,
                       help="campaign seed (per-kernel streams are "
                            "derived, so --budget growth only appends)")
    p_run.add_argument("--budget", type=int, default=50,
                       help="number of kernels to generate and check")
    p_run.add_argument("--configs", default=DEFAULT_CONFIGS,
                       help="speculation configs for the engine and "
                            "adder oracles (aliases or exact names)")
    p_run.add_argument("--oracles", default=",".join(ORACLES),
                       help="comma-separated subset of: "
                            + ", ".join(ORACLES))
    p_run.add_argument("--max-seconds", type=float, default=0.0,
                       help="stop generating new kernels after this "
                            "wall-clock budget (0 = unlimited)")
    p_run.add_argument("--save-failures", metavar="DIR", default="",
                       help="write minimized fixtures under DIR")
    p_run.add_argument("--no-minimize", action="store_true",
                       help="skip delta debugging of failures")
    p_run.add_argument("--shrink-evals", type=int,
                       default=shrink_mod.MAX_EVALS,
                       help="evaluation cap per minimization")
    add_json_flag(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser(
        "replay", help="re-check corpus fixtures (all oracles)")
    p_replay.add_argument("paths", nargs="*", metavar="FIXTURE",
                          help="fixture files (default: "
                               f"{corpus_mod.CORPUS_DIR}/*.json)")
    add_json_flag(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    p_gen = sub.add_parser("gen", help="print generated kernels")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--count", type=int, default=1)
    p_gen.add_argument("--index", type=int, default=0,
                       help="first kernel index")
    add_json_flag(p_gen)
    p_gen.set_defaults(func=_cmd_gen)
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = parse_args(argv)
    result: int = args.func(args)
    return result


def console_main() -> None:
    sys.exit(run_cli(main))


if __name__ == "__main__":
    sys.exit(run_cli(main))
