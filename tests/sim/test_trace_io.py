"""Trace persistence round-trips and the TraceBundle surface."""

import numpy as np
import pytest

from repro.core.predictors import run_speculation
from repro.core.speculation import ST2_DESIGN
from repro.kernels import pathfinder
from repro.sim.trace_io import (TraceBundle, load_trace, save_kernel_run,
                                save_trace)


@pytest.fixture(scope="module")
def run():
    return pathfinder.prepare(scale=0.2, seed=0).run()


class TestRoundTrip:
    def test_trace_columns_identical(self, run, tmp_path):
        p = tmp_path / "t.npz"
        save_trace(p, run.trace, run.insts, {"note": "test"})
        bundle = load_trace(p)
        assert isinstance(bundle, TraceBundle)
        for col in ("pc", "gtid", "ltid", "op_a", "op_b", "cin",
                    "width", "seq", "value"):
            assert np.array_equal(getattr(bundle.trace, col),
                                  getattr(run.trace, col)), col
        assert np.array_equal(bundle.insts.opcode, run.insts.opcode)
        assert bundle.metadata == {"note": "test"}

    def test_pc_labels_preserved(self, run, tmp_path):
        p = tmp_path / "t.npz"
        save_trace(p, run.trace)
        bundle = load_trace(p)
        assert bundle.trace.pc_labels == run.trace.pc_labels
        assert bundle.insts is None

    def test_loaded_trace_analyses_identically(self, run, tmp_path):
        """The entire speculation study must be reproducible from the
        persisted trace alone."""
        p = tmp_path / "t.npz"
        save_trace(p, run.trace)
        bundle = load_trace(p)
        fresh = run_speculation(run.trace, ST2_DESIGN)
        loaded = run_speculation(bundle.trace, ST2_DESIGN)
        assert fresh.thread_misprediction_rate \
            == loaded.thread_misprediction_rate
        assert np.array_equal(fresh.mispredicted, loaded.mispredicted)

    def test_kernel_run_metadata(self, run, tmp_path):
        p = tmp_path / "r.npz"
        save_kernel_run(p, run, {"scale": 0.2})
        meta = load_trace(p).metadata
        assert meta["kernel"] == "pathfinder"
        assert meta["scale"] == 0.2
        assert meta["block_threads"] == 128

    def test_version_checked(self, run, tmp_path):
        import json
        p = tmp_path / "t.npz"
        save_trace(p, run.trace)
        # corrupt the header version
        data = dict(np.load(p))
        header = json.loads(bytes(data["header"]).decode())
        header["format_version"] = 99
        data["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8)
        np.savez_compressed(p, **data)
        with pytest.raises(ValueError):
            load_trace(p)


class TestTupleDeprecation:
    def test_unpacking_warns_but_works(self, run, tmp_path):
        """The legacy 3-tuple protocol survives one release, loudly."""
        p = tmp_path / "t.npz"
        save_trace(p, run.trace, run.insts, {"note": "legacy"})
        with pytest.warns(DeprecationWarning, match="TraceBundle"):
            trace, insts, meta = load_trace(p)
        assert np.array_equal(trace.pc, run.trace.pc)
        assert np.array_equal(insts.active, run.insts.active)
        assert meta == {"note": "legacy"}

    def test_attribute_access_is_silent(self, run, tmp_path):
        import warnings
        p = tmp_path / "t.npz"
        save_trace(p, run.trace)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bundle = load_trace(p)
            assert len(bundle.trace) == len(run.trace)
            assert bundle.insts is None
            assert bundle.metadata == {}
