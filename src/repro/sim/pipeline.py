"""Cycle-approximate SM timing model.

The stand-in for GPGPU-Sim's performance simulation, detailed enough to
reproduce the paper's *performance* claim: ST2's extra recompute cycle
stalls the issuing warp and keeps the functional unit occupied one more
cycle, yet GPUs hide nearly all of it (0.36 % mean slowdown, 3.5 %
worst case).

Model per SM:

* all blocks that fit the SM's thread budget run concurrently, their
  warps scheduled greedy-oldest-first with ``schedulers_per_sm`` issue
  slots per cycle;
* a warp issues in order; instruction ``i`` waits for the completion of
  instruction ``i - ILP`` (a fixed lookahead approximating register
  dependencies, ILP=2) and for its functional-unit pool;
* an FU pool of width ``w`` dispatches a 32-thread warp instruction in
  ``ceil(32/w)`` cycles and is busy for that long; results appear after
  the opcode latency;
* **ST2 mode**: a warp instruction whose lanes include a carry
  misprediction holds its FU one extra cycle (the recompute) and
  delivers its result one cycle later — the stall signal of the paper's
  Figure 4.

The simulation consumes the warp-level :class:`InstStream` of one SM's
resident blocks; the whole-kernel duration is the SM makespan times the
number of block waves over the chip.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.isa.opcodes import FunctionalUnit
from repro.sim.config import GPUConfig, TITAN_V
from repro.sim.trace import opcode_from_id

#: instruction-level-parallelism lookahead: instruction i waits on i-2
ILP_DEPTH = 2


def _pool_width(gpu: GPUConfig, unit: FunctionalUnit) -> int:
    return {
        FunctionalUnit.ALU: gpu.alus_per_sm,
        FunctionalUnit.FPU: gpu.fpus_per_sm,
        FunctionalUnit.DPU: gpu.dpus_per_sm,
        FunctionalUnit.SFU: gpu.sfus_per_sm,
        FunctionalUnit.INT_MUL: gpu.alus_per_sm,
        FunctionalUnit.FP_MUL: gpu.fpus_per_sm,
        FunctionalUnit.LDST: gpu.ldst_per_sm,
        FunctionalUnit.CONTROL: gpu.warp_size,  # free issue
        FunctionalUnit.TENSOR: gpu.tensor_cores_per_sm * 4,
    }[unit]


@dataclass
class TimingResult:
    """Outcome of one SM-level timing simulation."""

    cycles: int                 # SM makespan for its resident blocks
    waves: int                  # block waves over the whole chip
    instructions: int
    stall_cycles_fu: int        # cycles lost to busy functional units
    extra_recompute_insts: int  # warp insts that paid the ST2 stall

    @property
    def total_cycles(self) -> int:
        """Whole-kernel duration in cycles."""
        return self.cycles * self.waves

    def duration_s(self, gpu: GPUConfig = TITAN_V) -> float:
        return self.total_cycles / (gpu.core_clock_ghz * 1e9)


def _resident_blocks(insts, gpu: GPUConfig, block_threads: int) -> list:
    """Pick the blocks co-resident on one SM (thread-budget limited)."""
    blocks = np.unique(insts.block)
    per_sm = max(1, min(gpu.max_blocks_per_sm,
                        gpu.max_threads_per_sm // block_threads))
    return list(blocks[:per_sm])


def simulate_sm(insts, launch, gpu: GPUConfig = TITAN_V,
                warp_mispredicts: dict = None) -> TimingResult:
    """Simulate one fully-loaded SM executing its resident blocks.

    ``warp_mispredicts`` maps ``(block, seq, warp) -> True`` for warp
    instructions that suffered at least one lane misprediction (ST2
    mode); pass ``None`` for the baseline.
    """
    resident = _resident_blocks(insts, gpu, launch.block_threads)
    sel = np.isin(insts.block, resident)
    blocks = insts.block[sel]
    seqs = insts.seq[sel]
    warps = insts.warp[sel]
    opcodes = insts.opcode[sel]

    # per-warp instruction lists, already seq-ordered within a block
    order = np.lexsort((seqs, warps))
    blocks, seqs, warps, opcodes = (a[order] for a in
                                    (blocks, seqs, warps, opcodes))

    warp_ids = np.unique(warps)
    warp_ptr = {int(w): 0 for w in warp_ids}
    warp_rows: dict = {int(w): np.nonzero(warps == w)[0]
                       for w in warp_ids}
    completions: dict = {int(w): [] for w in warp_ids}

    fu_free = {unit: 0 for unit in FunctionalUnit}
    stall_fu = 0
    extra = 0
    cycle = 0
    n_total = len(blocks)
    n_done = 0
    mispred = warp_mispredicts or {}

    # event-driven over warp readiness: process warps in ready order
    heap = [(0, int(w)) for w in warp_ids]
    heapq.heapify(heap)
    while heap:
        ready, w = heapq.heappop(heap)
        ptr = warp_ptr[w]
        rows = warp_rows[w]
        if ptr >= len(rows):
            continue
        row = rows[ptr]
        op = opcode_from_id(int(opcodes[row]))
        unit = op.unit
        width = _pool_width(TITAN_V if gpu is None else gpu, unit)
        dispatch = math.ceil(gpu.warp_size / max(width // 4, 1)) \
            if unit != FunctionalUnit.CONTROL else 1

        # dependency: wait for instruction ILP_DEPTH back to complete
        dep_ready = ready
        comp = completions[w]
        if len(comp) >= ILP_DEPTH:
            dep_ready = max(dep_ready, comp[-ILP_DEPTH])

        start = max(dep_ready, fu_free[unit])
        if start > dep_ready:
            stall_fu += start - dep_ready

        # miss_frac: fraction of the warp's lanes that mispredicted.
        # Only the adders serving those lanes stay occupied the extra
        # cycle (per-FU stall granularity), so the pool loses
        # `miss_frac` cycles of throughput; the warp itself must wait
        # the full extra cycle for its slowest lane.
        miss_frac = mispred.get(
            (int(blocks[row]), int(seqs[row]), w), 0.0)
        occupy = dispatch + miss_frac
        latency = op.latency + (1 if miss_frac > 0 else 0)
        if miss_frac > 0:
            extra += 1

        fu_free[unit] = start + occupy
        done = start + dispatch + latency
        comp.append(done)
        if len(comp) > 4:
            del comp[0:len(comp) - 4]
        warp_ptr[w] = ptr + 1
        n_done += 1
        cycle = max(cycle, done)
        if ptr + 1 < len(rows):
            heapq.heappush(heap, (start + dispatch, w))

    launch_blocks = launch.grid_blocks
    waves = max(1, math.ceil(launch_blocks
                             / (len(resident) * gpu.n_sms)))
    obs.add("sim.timing.warp_insts", n_total)
    obs.add("sim.timing.stall_cycles_fu", stall_fu)
    obs.add("sim.timing.recompute_insts", extra)
    return TimingResult(cycles=cycle, waves=waves,
                        instructions=n_total,
                        stall_cycles_fu=stall_fu,
                        extra_recompute_insts=extra)


def warp_misprediction_map(trace, mispredicted: np.ndarray) -> dict:
    """Aggregate lane-level mispredictions to warp instructions.

    Returns ``{(block, seq, warp): mispredicted-lane fraction}`` for
    every dynamic warp instruction in which any lane mispredicted — one
    lane's recompute stalls the whole warp (Section VI), but only that
    lane's adder stays occupied.
    """
    key = ((trace.block.astype(np.int64) << 44)
           + (trace.seq.astype(np.int64) << 20)
           + trace.warp.astype(np.int64))
    uniq, inverse, counts = np.unique(key, return_inverse=True,
                                      return_counts=True)
    miss_counts = np.bincount(inverse, weights=mispredicted.astype(float),
                              minlength=len(uniq))
    out: dict = {}
    hit = miss_counts > 0
    for k, frac in zip(uniq[hit], (miss_counts[hit] / counts[hit])):
        b = int(k >> 44)
        s = int((k >> 20) & ((1 << 24) - 1))
        w = int(k & ((1 << 20) - 1))
        out[(b, s, w)] = float(frac)
    return out


def simulate_sm_pair(insts, launch, warp_mispredicts: dict,
                     gpu: GPUConfig = TITAN_V) -> tuple:
    """Baseline and ST2 timelines under one shared schedule.

    Scheduling decisions (warp issue order, FU assignment) follow the
    baseline; the ST2 timeline replays the identical instruction order
    with the recompute penalties added.  This isolates the *stall* cost
    of mispredictions from scheduling noise — with the two simulated
    independently, heap tie-breaking flips could swamp sub-percent
    effects.
    """
    with obs.timer("sim.timing.pair"):
        base, st2 = _simulate_sm_pair(insts, launch, warp_mispredicts,
                                      gpu)
    obs.add("sim.timing.warp_insts", base.instructions)
    obs.add("sim.timing.stall_cycles_fu", base.stall_cycles_fu)
    obs.add("sim.timing.recompute_insts", st2.extra_recompute_insts)
    return base, st2


def _simulate_sm_pair(insts, launch, warp_mispredicts: dict,
                      gpu: GPUConfig = TITAN_V) -> tuple:
    resident = _resident_blocks(insts, gpu, launch.block_threads)
    sel = np.isin(insts.block, resident)
    blocks = insts.block[sel]
    seqs = insts.seq[sel]
    warps = insts.warp[sel]
    opcodes = insts.opcode[sel]
    order = np.lexsort((seqs, warps))
    blocks, seqs, warps, opcodes = (a[order] for a in
                                    (blocks, seqs, warps, opcodes))

    warp_ids = np.unique(warps)
    warp_ptr = {int(w): 0 for w in warp_ids}
    warp_rows = {int(w): np.nonzero(warps == w)[0] for w in warp_ids}
    comp_b: dict = {int(w): [] for w in warp_ids}
    comp_s: dict = {int(w): [] for w in warp_ids}

    fu_free_b = {unit: 0.0 for unit in FunctionalUnit}
    fu_free_s = {unit: 0.0 for unit in FunctionalUnit}
    stall_b = 0.0
    extra = 0
    makespan_b = 0.0
    makespan_s = 0.0
    mispred = warp_mispredicts or {}

    heap = [(0.0, 0.0, int(w)) for w in warp_ids]
    heapq.heapify(heap)
    while heap:
        ready_b, ready_s, w = heapq.heappop(heap)
        ptr = warp_ptr[w]
        rows = warp_rows[w]
        if ptr >= len(rows):
            continue
        row = rows[ptr]
        op = opcode_from_id(int(opcodes[row]))
        unit = op.unit
        width = _pool_width(gpu, unit)
        dispatch = math.ceil(gpu.warp_size / max(width // 4, 1)) \
            if unit != FunctionalUnit.CONTROL else 1

        dep_b, dep_s = ready_b, ready_s
        if len(comp_b[w]) >= ILP_DEPTH:
            dep_b = max(dep_b, comp_b[w][-ILP_DEPTH])
            dep_s = max(dep_s, comp_s[w][-ILP_DEPTH])

        start_b = max(dep_b, fu_free_b[unit])
        start_s = max(dep_s, fu_free_s[unit])
        stall_b += start_b - dep_b

        miss_frac = mispred.get(
            (int(blocks[row]), int(seqs[row]), w), 0.0)
        if miss_frac > 0:
            extra += 1
        fu_free_b[unit] = start_b + dispatch
        fu_free_s[unit] = start_s + dispatch + miss_frac
        done_b = start_b + dispatch + op.latency
        done_s = start_s + dispatch + op.latency \
            + (1 if miss_frac > 0 else 0)
        for comp, done in ((comp_b[w], done_b), (comp_s[w], done_s)):
            comp.append(done)
            if len(comp) > 4:
                del comp[0:len(comp) - 4]
        makespan_b = max(makespan_b, done_b)
        makespan_s = max(makespan_s, done_s)
        warp_ptr[w] = ptr + 1
        if ptr + 1 < len(rows):
            heapq.heappush(heap,
                           (start_b + dispatch, start_s + dispatch, w))

    waves = max(1, math.ceil(launch.grid_blocks
                             / (len(resident) * gpu.n_sms)))
    n_total = len(blocks)
    base = TimingResult(cycles=int(math.ceil(makespan_b)), waves=waves,
                        instructions=n_total,
                        stall_cycles_fu=int(stall_b),
                        extra_recompute_insts=0)
    st2 = TimingResult(cycles=int(math.ceil(makespan_s)), waves=waves,
                       instructions=n_total,
                       stall_cycles_fu=int(stall_b),
                       extra_recompute_insts=extra)
    return base, st2


def compare_baseline_st2(run, mispredicted: np.ndarray,
                         gpu: GPUConfig = TITAN_V) -> tuple:
    """Timing of the baseline and the ST2 GPU for one kernel run.

    Returns ``(baseline: TimingResult, st2: TimingResult)``.
    """
    return simulate_sm_pair(
        run.insts, run.launch,
        warp_misprediction_map(run.trace, mispredicted), gpu)
