"""Bounds-tier rules L9–L10 on top of :mod:`repro.lint.bounds`.

Both rules are **informational** — like L6/L8 they never affect the
exit code and never enter baselines.  They consume the per-kernel
:class:`~repro.lint.bounds.KernelBoundsReport`:

* **L9** — speculation provably *never* profitable: a non-bailed
  kernel that *contains* adder sites whose row-count upper bound is
  zero can never execute an adder-class instruction, so every config
  class's energy-saved upper bound is 0 and the ST2 datapath is dead
  weight on this kernel.  Site-free functions (helpers that never
  speculate at all) are vacuously unprofitable and stay silent.
* **L10** — speculation provably *always* profitable: some config
  class has a statically-zero misprediction rate, hence exactly zero
  slowdown, and a proven non-negative energy saving with at least one
  guaranteed adder row.  The message names every such class.

Bailed (trivial) reports claim nothing and emit neither rule.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.bounds import KernelBoundsReport, module_bounds
from repro.lint.findings import Finding


def _never_profitable(report: KernelBoundsReport) -> bool:
    if report.trivial or not report.sites:
        return False
    return all(c.saved.hi is not None and c.saved.hi <= 0.0
               for c in report.classes.values())


def _always_profitable_classes(report: KernelBoundsReport) -> List[str]:
    if report.trivial or report.rows.lo < 1:
        return []
    return sorted(
        key for key, c in report.classes.items()
        if c.mis.hi == 0.0 and c.over.hi == 0.0
        and c.saved.lo is not None and c.saved.lo >= 0.0)


def check_bounds(tree: ast.Module, path: str,
                 active: Set[str]) -> List[Finding]:
    """Run the requested bounds rules over one parsed module."""
    findings: List[Finding] = []
    for name, report in sorted(module_bounds(tree, path).items()):
        if "L9" in active and _never_profitable(report):
            findings.append(Finding(
                path, report.lineno, "L9",
                f"speculation provably never profitable in `{name}`: "
                f"no adder row can ever execute (row bound "
                f"{report.rows.to_json()}), so no config class can "
                f"save energy"))
        if "L10" in active:
            classes = _always_profitable_classes(report)
            if classes:
                findings.append(Finding(
                    path, report.lineno, "L10",
                    f"speculation provably always profitable in "
                    f"`{name}` under {', '.join(classes)}: zero "
                    f"mispredictions, zero slowdown, non-negative "
                    f"energy saving on >= {report.rows.lo} "
                    f"guaranteed adder row(s)"))
    return findings
