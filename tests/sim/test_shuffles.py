"""Warp shuffle primitives and warp reductions."""

import numpy as np
import pytest

from repro.sim.config import LaunchConfig
from repro.sim.functional import GridLauncher


def run_one(fn, threads=64, **params):
    launcher = GridLauncher()
    return launcher.run(fn, LaunchConfig(1, threads), **params)


class TestShuffles:
    def test_shfl_down_shifts_within_warp(self):
        captured = {}

        def kernel(k):
            captured["out"] = k.shfl_down(k.thread_id(), 1)

        run_one(kernel, threads=64)
        out = captured["out"]
        assert out[0] == 1 and out[5] == 6
        # lane 31 is out of range -> keeps its own value; warps isolated
        assert out[31] == 31
        assert out[32] == 33      # second warp shifts within itself

    def test_shfl_up(self):
        captured = {}

        def kernel(k):
            captured["out"] = k.shfl_up(k.thread_id() * 10, 2)

        run_one(kernel, threads=32)
        out = captured["out"]
        assert out[2] == 0 and out[31] == 290
        assert out[0] == 0        # below lane 0: own value

    def test_shfl_xor_butterfly(self):
        captured = {}

        def kernel(k):
            captured["out"] = k.shfl_xor(k.thread_id(), 1)

        run_one(kernel, threads=32)
        out = captured["out"]
        assert out[0] == 1 and out[1] == 0
        assert out[30] == 31 and out[31] == 30

    def test_shuffles_do_not_cross_warps(self):
        captured = {}

        def kernel(k):
            captured["out"] = k.shfl_xor(k.global_id(), 16)

        run_one(kernel, threads=64)
        out = captured["out"]
        assert out[0] == 16        # within warp 0
        assert out[32] == 48       # within warp 1, not warp 0


class TestWarpReductions:
    def test_fadd_reduction_sums_each_warp(self):
        captured = {}

        def kernel(k):
            vals = k.cvt_f32(k.thread_id())
            captured["out"] = k.warp_reduce_fadd(vals)

        run_one(kernel, threads=64)
        out = captured["out"]
        assert out[0] == pytest.approx(sum(range(32)))
        assert out[32] == pytest.approx(sum(range(32, 64)))

    def test_iadd_reduction_exact(self):
        captured = {}

        def kernel(k):
            captured["out"] = k.warp_reduce_iadd(k.thread_id() + 1)

        run_one(kernel, threads=32)
        assert captured["out"][0] == sum(range(1, 33))

    def test_reduction_adds_are_traced(self):
        def kernel(k):
            k.warp_reduce_iadd(k.thread_id())

        run = run_one(kernel, threads=32)
        # 5 shfl_down steps, each with one IADD over 32 lanes
        assert len(run.trace) == 5 * 32
        assert len(np.unique(run.trace.pc)) == 1   # one static add site
