"""``st2-client`` — talk to an ``st2-serve`` daemon.

Examples::

    st2-client spec --kernels smoke --configs ladder --json
    st2-client submit --server http://127.0.0.1:8787 --kernels smoke
    st2-client status a1b2c3d4e5f6
    st2-client watch a1b2c3d4e5f6
    st2-client result a1b2c3d4e5f6 --json
    st2-client run --kernels qrng_K2 --out manifest.jsonl
    st2-client jobs --limit 20
    st2-client health; st2-client stats --json; st2-client drain

``run`` is the offline-compatible round trip: submit, wait, fetch,
then record the results as the same JSONL manifest format ``st2-run``
writes — downstream tools (``st2-stats``, the analysis layer) cannot
tell served results from offline ones.

Exit codes follow the shared contract: 0 success, 1 the server
reported a job failure, 2 usage errors / unreachable server.
"""

from __future__ import annotations

import os
import sys

from repro import cli_common
from repro.api import JobSpec
from repro.serve.client import ServeClient, ServeError

PROG = "st2-client"

#: Environment override for ``--server``.
ENV_SERVER = "REPRO_SERVE_URL"

DEFAULT_SERVER = "http://127.0.0.1:8787"


def _add_server_args(parser) -> None:
    parser.add_argument("--server", default=None, metavar="URL",
                        help=f"server address (default: "
                             f"${ENV_SERVER} or {DEFAULT_SERVER})")
    parser.add_argument("--client", default="anon",
                        help="client identity for quota accounting "
                             "(default %(default)s)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall wait timeout in seconds "
                             "(default %(default)s)")


def _add_grid_args(parser) -> None:
    parser.add_argument("--kernels", default="smoke",
                        help="comma-separated kernel names or a group "
                             "(default %(default)s)")
    parser.add_argument("--configs", default="st2",
                        help="comma-separated speculation configs or "
                             "an alias (default %(default)s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default 0)")
    parser.add_argument("--per-kernel-seeds", action="store_true",
                        help="derive each unit's seed from "
                             "(seed, kernel) instead of sharing it")
    parser.add_argument("--no-aux", action="store_true",
                        help="skip the VaLHALLA + correlation "
                             "auxiliary measurements")
    parser.add_argument("--engine", default="auto",
                        choices=["interp", "vec", "auto"],
                        help="evaluation engine (default auto)")
    parser.add_argument("--priority", type=int, default=0,
                        help="queue priority, lower runs sooner "
                             "(default 0)")


def build_parser():
    parser = cli_common.build_parser(
        PROG, "Submit, watch and fetch ST2 experiment jobs from an "
              "st2-serve daemon.")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")

    p = sub.add_parser("spec", help="build a JobSpec wire document "
                                    "locally and print it (no server)")
    _add_grid_args(p)
    p.add_argument("--client", default="anon",
                   help="client identity stamped into the spec")
    cli_common.add_json_flag(p)

    p = sub.add_parser("submit", help="submit a job, print its status")
    _add_server_args(p)
    _add_grid_args(p)
    cli_common.add_json_flag(p)

    p = sub.add_parser("status", help="poll one job's status")
    p.add_argument("job_id")
    _add_server_args(p)
    cli_common.add_json_flag(p)

    p = sub.add_parser("watch", help="stream one job's status changes "
                                     "until it finishes")
    p.add_argument("job_id")
    _add_server_args(p)
    cli_common.add_json_flag(p)

    p = sub.add_parser("result", help="fetch a finished job's results")
    p.add_argument("job_id")
    _add_server_args(p)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the results as a JSONL manifest")
    cli_common.add_json_flag(p)

    p = sub.add_parser("run", help="submit, wait and record a "
                                   "manifest (the st2-run round trip)")
    _add_server_args(p)
    _add_grid_args(p)
    p.add_argument("--out", default="st2_client_manifest.jsonl",
                   help="JSONL manifest path (default %(default)s)")
    cli_common.add_json_flag(p)

    p = sub.add_parser("jobs", help="list jobs on the server "
                                    "(paginated)")
    _add_server_args(p)
    p.add_argument("--filter-client", default=None, metavar="NAME",
                   help="only jobs submitted by this client identity")
    p.add_argument("--cursor", default=None,
                   help="resume the listing from a previous page's "
                        "next_cursor")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="page size; one page is printed (with its "
                        "next_cursor) instead of the whole listing")
    cli_common.add_json_flag(p)

    p = sub.add_parser("health", help="server health probe")
    _add_server_args(p)
    cli_common.add_json_flag(p)

    p = sub.add_parser("stats", help="server counters and queue state")
    _add_server_args(p)
    cli_common.add_json_flag(p)

    p = sub.add_parser("drain", help="ask the server to drain "
                                     "gracefully")
    _add_server_args(p)
    cli_common.add_json_flag(p)

    return parser


def _spec_from_args(args) -> JobSpec:
    """Resolve kernel groups / config aliases locally, exactly like
    ``st2-run``, and freeze the grid into a JobSpec."""
    from repro.kernels.suite import resolve_kernels
    from repro.runner.units import resolve_configs

    kernels = resolve_kernels(args.kernels)
    configs = resolve_configs(args.configs)
    return JobSpec.from_run_args(
        kernels=tuple(kernels),
        configs=tuple(cfg.name for cfg in configs),
        scale=args.scale, seed=args.seed, aux=not args.no_aux,
        per_kernel_seeds=args.per_kernel_seeds, engine=args.engine,
        priority=args.priority, client=args.client)


def _client(args) -> ServeClient:
    server = args.server or os.environ.get(ENV_SERVER) \
        or DEFAULT_SERVER
    return ServeClient(server, client=args.client,
                       timeout=args.timeout)


def _print_status(status, as_json: bool) -> None:
    if as_json:
        cli_common.emit_json(status.to_wire())
        return
    done = status.units_done + status.units_failed
    line = (f"{status.job_id}  {status.state:<8} "
            f"{done}/{status.units_total} units "
            f"(cached {status.units_cached}, coalesced "
            f"{status.units_coalesced}, failed {status.units_failed})")
    print(line)
    if status.error:
        print(f"  error: {status.error.splitlines()[0]}")


def _write_manifest(path, result) -> str:
    from repro.runner.manifest import write_manifest

    meta = dict(result.meta)
    meta["served"] = True
    return str(write_manifest(path, list(result.units), meta=meta))


def _print_result(result, args) -> None:
    if args.json:
        cli_common.emit_json(result.to_wire())
        return
    for unit in result.units:
        miss = unit.get("metrics", {}).get("misprediction_rate")
        miss_text = f"{miss:.4f}" if isinstance(miss, float) else "?"
        origin = "cache" if unit.get("cached") else "served"
        print(f"{unit.get('kernel'):<24} {unit.get('config'):<14} "
              f"miss={miss_text} ({origin})")
    print(f"{len(result.units)} units from job {result.job_id}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "spec":
        try:
            spec = _spec_from_args(args)
        except KeyError as exc:
            return cli_common.fail(PROG, exc.args[0])
        cli_common.emit_json(spec.to_wire())
        return cli_common.EXIT_OK

    try:
        if args.command in ("submit", "run"):
            try:
                spec = _spec_from_args(args)
            except KeyError as exc:
                return cli_common.fail(PROG, exc.args[0])

        with _client(args) as sc:
            if args.command == "health":
                doc = sc.health()
                if args.json:
                    cli_common.emit_json(doc)
                else:
                    print(f"ok shards={doc.get('shards')} "
                          f"draining={doc.get('draining')} "
                          f"schema={doc.get('schema_version')}")
                return cli_common.EXIT_OK
            if args.command == "stats":
                doc = sc.stats()
                if args.json:
                    cli_common.emit_json(doc)
                else:
                    state = doc.get("state", {})
                    for name in sorted(state):
                        print(f"{name:>18}: {state[name]}")
                return cli_common.EXIT_OK
            if args.command == "drain":
                doc = sc.drain()
                if args.json:
                    cli_common.emit_json(doc)
                else:
                    print(f"draining ({doc.get('jobs_live')} jobs "
                          f"still live)")
                return cli_common.EXIT_OK
            if args.command == "jobs":
                if args.limit is not None \
                        or args.cursor is not None:
                    statuses, cursor = sc.jobs_page(
                        client=args.filter_client,
                        cursor=args.cursor,
                        limit=args.limit or 100)
                else:
                    statuses = list(sc.iter_jobs(
                        client=args.filter_client))
                    cursor = None
                if args.json:
                    cli_common.emit_json({
                        "jobs": [s.to_wire() for s in statuses],
                        "next_cursor": cursor,
                    })
                else:
                    for status in statuses:
                        _print_status(status, False)
                    if cursor is not None:
                        print(f"next page: --cursor {cursor}")
                return cli_common.EXIT_OK
            if args.command == "submit":
                _print_status(sc.submit_retry(
                    spec, deadline_s=args.timeout), args.json)
                return cli_common.EXIT_OK
            if args.command == "status":
                _print_status(sc.status(args.job_id), args.json)
                return cli_common.EXIT_OK
            if args.command == "watch":
                final = None
                for status in sc.events(args.job_id):
                    final = status
                    _print_status(status, args.json)
                return cli_common.EXIT_OK if final is None \
                    or final.state == "done" else cli_common.EXIT_PROBLEMS
            if args.command == "result":
                result = sc.result(args.job_id)
                if args.out is not None:
                    path = _write_manifest(args.out, result)
                    print(f"{PROG}: manifest written to {path}",
                          file=sys.stderr)
                _print_result(result, args)
                return cli_common.EXIT_OK
            if args.command == "run":
                status = sc.submit_retry(spec,
                                         deadline_s=args.timeout)
                result = sc.run_to_completion(
                    status.job_id, timeout=args.timeout)
                path = _write_manifest(args.out, result)
                if args.json:
                    cli_common.emit_json({
                        "job_id": result.job_id,
                        "manifest": path,
                        "meta": result.meta,
                        "units": [dict(u) for u in result.units],
                    })
                else:
                    _print_result(result, args)
                    print(f"manifest: {path}")
                return cli_common.EXIT_OK
    except ServeError as exc:
        code = cli_common.EXIT_PROBLEMS \
            if exc.code == "internal" else cli_common.EXIT_USAGE
        return cli_common.fail(PROG, str(exc), code)
    except (ConnectionError, OSError, TimeoutError) as exc:
        return cli_common.fail(PROG, f"server unreachable: {exc}")
    return cli_common.fail(PROG, f"unknown command {args.command!r}")


def console_main() -> int:
    return cli_common.run_cli(main)


if __name__ == "__main__":
    sys.exit(console_main())
