"""Statistics helpers and terminal figure rendering."""

from repro.analysis.ascii_charts import (grouped_bars, hbar_chart, scatter,
                                         stacked_pair, table)
from repro.analysis.stats import geometric_mean, mean_ci95, pearson_r

__all__ = ["geometric_mean", "grouped_bars", "hbar_chart", "mean_ci95",
           "pearson_r", "scatter", "stacked_pair", "table"]
