"""Pre-planned replica of the shared-schedule timing pair.

:func:`repro.sim.pipeline._simulate_sm_pair` re-derives the resident
blocks, the per-warp instruction order and every opcode's dispatch /
latency / functional unit on **every** call, and looks each warp
instruction's misprediction fraction up in a Python dict.  All of that
is config-independent, so the vec engine splits it:

* :func:`build_timing_plan` — once per trace: resident-block
  selection, the lexsorted per-warp instruction lists with their
  dispatch/latency/unit already resolved, the warp-instruction keys
  pre-matched (``searchsorted``) against the trace's warp-instruction
  ids, and the wave count.
* :func:`plan_miss_frac` — per config: the mispredicted-lane fraction
  of every planned instruction, as one vectorised ``bincount`` +
  gather instead of a dict of decoded tuples.
* :func:`run_pair` — the event loop itself, arithmetic-for-arithmetic
  identical to the reference (same heap tuples in the same initial
  order, same float64 accumulation order, same completion-window
  truncation), just without the per-iteration re-derivation.

The replica must stay *exactly* equivalent — ``TimingResult`` feeds the
energy model's duration scaling, and the equivalence suite asserts
equality against the reference on real kernel runs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.isa.opcodes import FunctionalUnit
from repro.sim.config import GPUConfig, TITAN_V
from repro.sim.pipeline import (ILP_DEPTH, TimingResult, _pool_width,
                                _resident_blocks)
from repro.sim.trace import opcode_from_id

_UNITS = list(FunctionalUnit)
_UNIT_INDEX = {unit: i for i, unit in enumerate(_UNITS)}


@dataclass
class TimingPlan:
    """Everything config-independent about one run's timing pair."""

    #: per warp id: (dispatch, latency, unit-index, planned-row) lists,
    #: already in the reference's ``lexsort((seqs, warps))`` order
    warps: Dict[int, Tuple[List[int], List[int], List[int], List[int]]]
    warp_ids: List[int]         # np.unique order — fixes heap ties
    n_insts: int                # resident warp instructions
    waves: int
    #: warp-instruction key per planned row, and its pre-computed match
    #: against the trace's sorted unique warp-instruction ids
    inst_pos: np.ndarray        # (n_insts,) index into the unique ids
    inst_match: np.ndarray      # (n_insts,) bool — key present in trace
    #: the trace side of the match: unique warp-instruction ids with
    #: their lane inverse mapping and lane counts
    lane_inverse: np.ndarray    # (n_trace_rows,)
    lane_counts: np.ndarray     # (n_uniq,) int64
    n_uniq: int


def _warp_inst_keys(block: np.ndarray, seq: np.ndarray,
                    warp: np.ndarray) -> np.ndarray:
    """The ``(block, seq, warp)`` packing of ``warp_misprediction_map``."""
    return ((block.astype(np.int64) << 44)
            + (seq.astype(np.int64) << 20)
            + warp.astype(np.int64))


def build_timing_plan(run: Any, gpu: GPUConfig = TITAN_V) -> TimingPlan:
    """Resolve every config-independent decision of the pair sim."""
    insts = run.insts
    launch = run.launch
    resident = _resident_blocks(insts, gpu, launch.block_threads)
    sel = np.isin(insts.block, resident)
    blocks = insts.block[sel]
    seqs = insts.seq[sel]
    warps = insts.warp[sel]
    opcodes = insts.opcode[sel]
    order = np.lexsort((seqs, warps))
    blocks, seqs, warps, opcodes = (a[order] for a in
                                    (blocks, seqs, warps, opcodes))
    opcodes = np.asarray(opcodes, dtype=np.int64)

    # per-opcode-id dispatch / latency / unit, resolved once into
    # lookup tables (any id opcode_from_id accepts is a non-negative
    # enum position, so direct indexing is sound)
    uniq_ops = np.unique(opcodes)
    n_ids = int(uniq_ops[-1]) + 1 if len(uniq_ops) else 0
    disp_lut = np.zeros(n_ids, dtype=np.int64)
    lat_lut = np.zeros(n_ids, dtype=np.int64)
    unit_lut = np.zeros(n_ids, dtype=np.int64)
    for oid in uniq_ops:
        op = opcode_from_id(int(oid))
        unit = op.unit
        width = _pool_width(gpu, unit)
        dispatch = (math.ceil(gpu.warp_size / max(width // 4, 1))
                    if unit != FunctionalUnit.CONTROL else 1)
        disp_lut[oid] = dispatch
        lat_lut[oid] = op.latency
        unit_lut[oid] = _UNIT_INDEX[unit]
    dl_all = disp_lut[opcodes]
    ll_all = lat_lut[opcodes]
    ul_all = unit_lut[opcodes]

    # rows are sorted by warp (the lexsort's primary key), so every
    # warp's plan is a contiguous slice of the resolved columns
    uniq_warps = np.unique(warps)
    warp_ids = [int(w) for w in uniq_warps]
    starts = np.searchsorted(warps, uniq_warps, side="left")
    ends = np.searchsorted(warps, uniq_warps, side="right")
    warp_plans = {}
    for w, s, e in zip(warp_ids, starts, ends):
        warp_plans[w] = (dl_all[s:e].tolist(), ll_all[s:e].tolist(),
                         ul_all[s:e].tolist(),
                         list(range(int(s), int(e))))

    # pre-match the planned rows against the trace's warp-instruction
    # ids so per-config miss fractions become a pure gather
    tkey = _warp_inst_keys(run.trace.block, run.trace.seq,
                           run.trace.warp)
    uniq, lane_inverse, lane_counts = np.unique(
        tkey, return_inverse=True, return_counts=True)
    ikey = _warp_inst_keys(blocks, seqs, warps)
    if len(uniq):
        pos = np.searchsorted(uniq, ikey)
        pos = np.clip(pos, 0, len(uniq) - 1)
        match = uniq[pos] == ikey
    else:
        pos = np.zeros(len(ikey), dtype=np.int64)
        match = np.zeros(len(ikey), dtype=bool)

    waves = max(1, math.ceil(launch.grid_blocks
                             / (len(resident) * gpu.n_sms)))
    return TimingPlan(warps=warp_plans, warp_ids=warp_ids,
                      n_insts=len(blocks), waves=waves,
                      inst_pos=pos, inst_match=match,
                      lane_inverse=lane_inverse,
                      lane_counts=lane_counts.astype(np.int64),
                      n_uniq=len(uniq))


def plan_miss_frac(plan: TimingPlan,
                   mispredicted: np.ndarray) -> np.ndarray:
    """Mispredicted-lane fraction of every planned instruction.

    Bit-identical values to looking the instruction up in
    :func:`~repro.sim.pipeline.warp_misprediction_map`'s dict (same
    ``bincount(weights=...) / counts`` float64 division; absent keys
    and all-correct warps are 0.0 there and 0.0 here).
    """
    miss_counts = np.bincount(plan.lane_inverse,
                              weights=mispredicted.astype(float),
                              minlength=plan.n_uniq)
    if not plan.n_uniq:
        return np.zeros(len(plan.inst_pos), dtype=np.float64)
    frac = miss_counts / plan.lane_counts
    out: np.ndarray = np.where(plan.inst_match, frac[plan.inst_pos],
                               0.0)
    return out


def run_pair(plan: TimingPlan, miss_frac: np.ndarray) -> tuple:
    """Replay the baseline/ST2 shared-schedule pair over a plan.

    The loop body mirrors ``_simulate_sm_pair`` operation for
    operation: identical heap contents, identical float64 expression
    order, identical completion-window truncation — so every
    ``TimingResult`` field (makespans included) matches exactly.  (The
    ``a if a > b else b`` forms below ARE ``max(b, a)``: floats that
    compare equal are the same value, so branch choice cannot change
    the result — only the per-iteration builtin-call cost.)
    """
    frac_list: List[float] = miss_frac.tolist()
    n_units = len(_UNITS)
    fu_free_b = [0.0] * n_units
    fu_free_s = [0.0] * n_units
    warp_ptr = {w: 0 for w in plan.warp_ids}
    comp_b: Dict[int, List[float]] = {w: [] for w in plan.warp_ids}
    comp_s: Dict[int, List[float]] = {w: [] for w in plan.warp_ids}
    stall_b = 0.0
    extra = 0
    makespan_b = 0.0
    makespan_s = 0.0

    heap: List[Tuple[float, float, int]] = [(0.0, 0.0, w)
                                            for w in plan.warp_ids]
    heapq.heapify(heap)
    heappop = heapq.heappop
    heappush = heapq.heappush
    warps = plan.warps
    while heap:
        dep_b, dep_s, w = heappop(heap)
        ptr = warp_ptr[w]
        dl, ll, ul, row_list = warps[w]
        n_w = len(dl)
        if ptr >= n_w:
            continue
        dispatch = dl[ptr]
        latency = ll[ptr]
        unit = ul[ptr]

        cb = comp_b[w]
        cs = comp_s[w]
        if len(cb) >= ILP_DEPTH:
            d = cb[-ILP_DEPTH]
            if d > dep_b:
                dep_b = d
            d = cs[-ILP_DEPTH]
            if d > dep_s:
                dep_s = d

        f = fu_free_b[unit]
        start_b = f if f > dep_b else dep_b
        f = fu_free_s[unit]
        start_s = f if f > dep_s else dep_s
        stall_b += start_b - dep_b

        frac = frac_list[row_list[ptr]]
        if frac > 0:
            extra += 1
        next_b = start_b + dispatch
        next_s = start_s + dispatch
        fu_free_b[unit] = next_b
        fu_free_s[unit] = next_s + frac
        done_b = next_b + latency
        done_s = next_s + latency + (1 if frac > 0 else 0)
        cb.append(done_b)
        if len(cb) > 4:
            del cb[:-4]
        cs.append(done_s)
        if len(cs) > 4:
            del cs[:-4]
        if done_b > makespan_b:
            makespan_b = done_b
        if done_s > makespan_s:
            makespan_s = done_s
        warp_ptr[w] = ptr + 1
        if ptr + 1 < n_w:
            heappush(heap, (next_b, next_s, w))

    base = TimingResult(cycles=int(math.ceil(makespan_b)),
                        waves=plan.waves, instructions=plan.n_insts,
                        stall_cycles_fu=int(stall_b),
                        extra_recompute_insts=0)
    st2 = TimingResult(cycles=int(math.ceil(makespan_s)),
                       waves=plan.waves, instructions=plan.n_insts,
                       stall_cycles_fu=int(stall_b),
                       extra_recompute_insts=extra)
    return base, st2
