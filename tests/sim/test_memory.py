"""Device memory, allocation and coalescing statistics."""

import numpy as np

from repro.sim.memory import (SECTOR_BYTES, Allocator, DeviceBuffer,
                              MemoryStats)


class TestAllocator:
    def test_bases_are_256_aligned(self):
        alloc = Allocator()
        for name in ("a", "b", "c"):
            buf = alloc.alloc(name, np.zeros(100, np.float32))
            assert buf.base % 256 == 0

    def test_buffers_do_not_overlap(self):
        alloc = Allocator()
        a = alloc.alloc("a", np.zeros(1000, np.float64))
        b = alloc.alloc("b", np.zeros(1000, np.float64))
        assert b.base >= a.base + 8000

    def test_name_jitter_is_deterministic(self):
        a1 = Allocator().alloc("x", np.zeros(4, np.int32))
        a2 = Allocator().alloc("x", np.zeros(4, np.int32))
        assert a1.base == a2.base

    def test_different_names_get_different_offsets(self):
        a = Allocator().alloc("first", np.zeros(4, np.int32))
        b = Allocator().alloc("second", np.zeros(4, np.int32))
        assert a.base != b.base


class TestDeviceBuffer:
    def test_byte_offsets_scale_by_itemsize(self):
        buf = DeviceBuffer("b", np.zeros(8, np.float64), 0)
        offs = buf.byte_offsets(np.array([0, 1, 2]))
        assert list(offs) == [0, 8, 16]

    def test_len(self):
        assert len(DeviceBuffer("b", np.zeros((4, 4)), 0)) == 16


class TestCoalescing:
    def test_sequential_access_coalesces(self):
        stats = MemoryStats()
        addrs = np.arange(32) * 4          # 128 B -> 4 sectors
        stats.record_global(addrs, np.zeros(32, np.int64), is_store=False)
        assert stats.global_loads == 32
        assert stats.global_load_transactions == 4

    def test_strided_access_explodes_transactions(self):
        stats = MemoryStats()
        addrs = np.arange(32) * SECTOR_BYTES * 2   # one sector each
        stats.record_global(addrs, np.zeros(32, np.int64), is_store=False)
        assert stats.global_load_transactions == 32

    def test_sectors_counted_per_warp(self):
        stats = MemoryStats()
        addrs = np.zeros(64, dtype=np.int64)   # all the same sector
        warps = np.repeat([0, 1], 32)          # but two warps
        stats.record_global(addrs, warps, is_store=True)
        assert stats.global_store_transactions == 2

    def test_empty_access(self):
        stats = MemoryStats()
        stats.record_global(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64), is_store=False)
        assert stats.global_loads == 0

    def test_merge(self):
        a, b = MemoryStats(), MemoryStats()
        a.shared_loads = 5
        b.shared_loads = 7
        b.global_loads = 3
        a.merge(b)
        assert a.shared_loads == 12
        assert a.global_loads == 3
