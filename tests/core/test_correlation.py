"""Section III value-correlation study (Figures 2 and 3)."""

import pytest

from repro.core.correlation import (intra_pc_value_spread,
                                    inter_pc_value_spread,
                                    slice_carry_correlation,
                                    value_evolution)
from repro.kernels import pathfinder


@pytest.fixture(scope="module")
def pf_trace():
    return pathfinder.prepare(scale=0.3, seed=0).run().trace


class TestValueEvolution:
    def test_returns_busiest_pcs(self, pf_trace):
        series = value_evolution(pf_trace, max_pcs=7)
        assert len(series) == 7
        counts = [len(s.values) for s in series]
        assert counts == sorted(counts, reverse=True) or \
            max(counts) >= min(counts)

    def test_series_carry_labels_and_chains(self, pf_trace):
        series = value_evolution(pf_trace, max_pcs=3)
        for s in series:
            assert s.label
            assert len(s.chain_lengths) == len(s.values)
            assert (s.chain_lengths >= 0).all()

    def test_magnitude_band(self, pf_trace):
        s = value_evolution(pf_trace, max_pcs=1)[0]
        lo, hi = s.magnitude_band
        assert lo <= hi

    def test_point_cap(self, pf_trace):
        series = value_evolution(pf_trace, max_pcs=2,
                                 max_points_per_pc=50)
        assert all(len(s.values) <= 50 for s in series)


class TestSpreadStatistics:
    def test_intra_pc_spread_below_inter(self, pf_trace):
        """The paper's core Section III claim: values at one PC are of
        similar magnitude; across PCs they vary wildly."""
        assert intra_pc_value_spread(pf_trace) \
            < inter_pc_value_spread(pf_trace)

    def test_empty_trace(self):
        from tests.conftest import make_trace
        t = make_trace([], [], [], [], [])
        assert intra_pc_value_spread(t) == 0.0
        assert inter_pc_value_spread(t) == 0.0


class TestFig3Correlation:
    def test_spatio_temporal_beats_temporal(self, pf_trace):
        """Fig 3: Prev+FullPC+Gtid >> Prev+Gtid on loop kernels."""
        summary = slice_carry_correlation(pf_trace, "pathfinder")
        assert summary.rate("Prev+FullPC+Gtid") \
            > summary.rate("Prev+Gtid")

    def test_rates_are_probabilities(self, pf_trace):
        summary = slice_carry_correlation(pf_trace)
        for rate in summary.match_rates.values():
            assert 0.0 <= rate <= 1.0

    def test_kernel_name_carried(self, pf_trace):
        assert slice_carry_correlation(pf_trace, "pf").kernel == "pf"
