"""Fixed fact-export sample for the golden byte-stability test."""
import numpy as np


def golden_kernel(k, data, out):
    t = k.thread_id()
    acc = k.ld_global(data, t)
    for i in k.range(4):
        acc = k.iadd(acc, 0)
    x = k.iand(acc, 255)
    y = k.iadd(x, 1)
    k.st_global(out, t, y)


def golden_bailer(k, data, out):
    t = k.thread_id()
    bump = lambda v: k.iadd(v, 1)  # noqa: E731 — the bail under test
    k.st_global(out, t, bump(t))
