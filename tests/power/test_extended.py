"""The optional GREENER/WaSP power extensions: default-off means
bit-identical, enabled-with-defaults is still a numeric no-op, and the
terms land only on their home components."""

import pytest

from repro.power.activity import ActivityVector
from repro.power.components import Component
from repro.power.extended import (ExtensionError, PowerExtensions,
                                  RegFileParams, SchedulerParams)
from repro.power.model import GPUPowerModel


def make_activity():
    return ActivityVector(
        name="ext-test",
        counts={Component.ALU_FPU: 4e6, Component.REGFILE: 9e6,
                Component.OTHERS: 2e6, Component.CACHES_MC: 1e5,
                Component.DRAM: 4e4},
        duration_s=2e-3, n_active_sms=40)


class TestDefaultOff:
    def test_extensions_none_is_bit_identical(self):
        activity = make_activity()
        plain = GPUPowerModel()
        with_field = GPUPowerModel(extensions=None)
        assert plain.component_power_w(activity) \
            == with_field.component_power_w(activity)
        assert plain.total_energy_j(activity) \
            == with_field.total_energy_j(activity)

    def test_enabled_defaults_are_numeric_noops(self):
        """Turning the flags on without parameters changes nothing:
        the defaults encode zero extra energy."""
        activity = make_activity()
        plain = GPUPowerModel()
        extended = GPUPowerModel(extensions=PowerExtensions(
            regfile=RegFileParams(),
            scheduler=SchedulerParams()))
        assert plain.component_power_w(activity) \
            == extended.component_power_w(activity)
        assert extended.extensions.duration_scale() == 1.0

    def test_empty_bundle_inactive(self):
        assert not PowerExtensions().active
        assert PowerExtensions(regfile=RegFileParams()).active


class TestRegFileTerm:
    def test_conflicts_inflate_only_regfile(self):
        activity = make_activity()
        plain = GPUPowerModel()
        extended = GPUPowerModel(extensions=PowerExtensions(
            regfile=RegFileParams(bank_conflict_rate=0.25)))
        base = plain.component_power_w(activity)
        ext = extended.component_power_w(activity)
        assert ext[Component.REGFILE] == pytest.approx(
            base[Component.REGFILE] * 1.25)
        for c in Component:
            if c is not Component.REGFILE:
                assert ext[c] == base[c]

    def test_drowsy_fraction_cuts_leakage(self):
        awake = RegFileParams(leakage_w=2.0)
        drowsy = RegFileParams(leakage_w=2.0, drowsy_fraction=0.5,
                               drowsy_savings=0.9)
        assert awake.extra_power_w(0.0) == pytest.approx(2.0)
        assert drowsy.extra_power_w(0.0) == pytest.approx(
            2.0 * (1.0 - 0.5 * 0.9))

    def test_validation(self):
        with pytest.raises(ExtensionError):
            RegFileParams(bank_conflict_rate=-0.1)
        with pytest.raises(ExtensionError):
            RegFileParams(drowsy_fraction=1.5)
        with pytest.raises(ExtensionError):
            RegFileParams(leakage_w=-1.0)


class TestSchedulerTerm:
    def test_schedule_energy_on_others(self):
        activity = make_activity()
        plain = GPUPowerModel()
        params = SchedulerParams(schedule_pj=5.0)
        extended = GPUPowerModel(extensions=PowerExtensions(
            scheduler=params))
        base = plain.component_power_w(activity)
        ext = extended.component_power_w(activity)
        expect_w = (activity.rate(Component.OTHERS) * 5.0 * 1e-12)
        assert ext[Component.OTHERS] == pytest.approx(
            base[Component.OTHERS] + expect_w)
        for c in Component:
            if c is not Component.OTHERS:
                assert ext[c] == base[c]

    def test_gating_scales_linearly(self):
        activity = make_activity()
        full = SchedulerParams(schedule_pj=5.0)
        gated = SchedulerParams(schedule_pj=5.0, gated_fraction=0.4)
        assert gated.extra_power_w(activity) == pytest.approx(
            full.extra_power_w(activity) * 0.6)

    def test_duration_scale_floor(self):
        with pytest.raises(ExtensionError):
            SchedulerParams(duration_scale=0.9)
        bundle = PowerExtensions(
            scheduler=SchedulerParams(duration_scale=1.2))
        assert bundle.duration_scale() == pytest.approx(1.2)


class TestWire:
    def test_round_trip(self):
        bundle = PowerExtensions(
            regfile=RegFileParams(bank_conflict_rate=0.1,
                                  leakage_w=1.5,
                                  drowsy_fraction=0.3),
            scheduler=SchedulerParams(schedule_pj=4.0,
                                      gated_fraction=0.2,
                                      duration_scale=1.05))
        assert PowerExtensions.from_wire(bundle.to_wire()) == bundle

    def test_absent_members_round_trip(self):
        bundle = PowerExtensions()
        assert PowerExtensions.from_wire(bundle.to_wire()) == bundle
