"""Rodinia *b+tree* — ``b+tree_K1`` (findK) and ``b+tree_K2``
(findRangeK).

One thread per query descends a B+ tree of fan-out ``ORDER``: at each
level it scans the node's sorted keys, picks the child whose key range
covers the query (integer compares + offset arithmetic), and follows the
child index.  K2 performs the descent for a *range* query — two bounds
per thread — roughly doubling the integer work.

The tree is stored as flat arrays: ``keys[node * ORDER + i]`` and
``children[node * ORDER + i]``, built over sorted random keys, so the
traversal index arithmetic is the dominant ALU-add source (as in the
paper's Figure 1, where both b+tree kernels are ALU-heavy).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

ORDER = 8
BLOCK = 128


def _find_child(k, keys, node, query):
    """Scan a node's keys; return the index of the covering child."""
    child = np.zeros(k.n_threads, dtype=np.int64)
    base = k.imul(node, ORDER)
    for i in k.range(ORDER - 1):
        key_i = k.ld_global(keys, k.iadd(base, i))
        go_right = k.ge(query, key_i)
        child = k.sel(go_right, k.iadd(i, 1), child)
    return child


def findk_kernel(k, keys, children, leaf_values, queries, answers,
                 height, n_queries):
    """b+tree_K1: point lookups."""
    q = k.global_id()
    with k.where(k.lt(q, n_queries)):
        query = k.ld_global(queries, q)
        node = np.zeros(k.n_threads, dtype=np.int64)
        for _level in k.range(height):
            child = _find_child(k, keys, node, query)
            ptr = k.iadd(k.imul(node, ORDER), child)
            node = k.ld_global(children, ptr)
        k.st_global(answers, q, k.ld_global(leaf_values, node))


def findrangek_kernel(k, keys, children, leaf_values, starts, ends,
                      answers, height, n_queries):
    """b+tree_K2: range queries (descend for both bounds)."""
    q = k.global_id()
    with k.where(k.lt(q, n_queries)):
        lo = k.ld_global(starts, q)
        hi = k.ld_global(ends, q)
        node_lo = np.zeros(k.n_threads, dtype=np.int64)
        node_hi = np.zeros(k.n_threads, dtype=np.int64)
        for _level in k.range(height):
            # the CUDA compiler inlines findK's search loop once per
            # bound, so each descent owns distinct static PCs
            with k.inline("lo"):
                c_lo = _find_child(k, keys, node_lo, lo)
            with k.inline("hi"):
                c_hi = _find_child(k, keys, node_hi, hi)
            node_lo = k.ld_global(children,
                                  k.iadd(k.imul(node_lo, ORDER), c_lo))
            node_hi = k.ld_global(children,
                                  k.iadd(k.imul(node_hi, ORDER), c_hi))
        span = k.isub(k.ld_global(leaf_values, node_hi),
                      k.ld_global(leaf_values, node_lo))
        k.st_global(answers, q, span)


def _build_tree(rng, height):
    """Flat implicit B+ tree: ORDER^height leaves, separator keys at
    inner nodes.  Node ids are breadth-first; children[] holds node ids
    at the next level (leaf level holds value indices)."""
    n_nodes = sum(ORDER ** level for level in range(height))
    n_leaves = ORDER ** height
    key_universe = np.sort(rng.integers(0, 1 << 22, n_leaves))
    keys = np.zeros(n_nodes * ORDER, dtype=np.int32)
    children = np.zeros(n_nodes * ORDER, dtype=np.int32)
    node = 0
    level_start = 0
    for level in range(height):
        level_nodes = ORDER ** level
        next_start = level_start + level_nodes
        leaves_per_child = ORDER ** (height - level - 1)
        for n in range(level_nodes):
            first_leaf = (node - level_start) * ORDER * leaves_per_child
            for i in range(ORDER):
                child_leaf = first_leaf + (i + 1) * leaves_per_child
                if i < ORDER - 1:
                    keys[node * ORDER + i] = key_universe[
                        min(child_leaf, n_leaves - 1)]
                if level == height - 1:
                    children[node * ORDER + i] = first_leaf + i
                else:
                    children[node * ORDER + i] = \
                        next_start + (node - level_start) * ORDER + i
            node += 1
        level_start = next_start
    return keys, children, key_universe


def _prepare(kernel_name, scale, seed, gpu):
    rng = np.random.default_rng(seed)
    height = 3
    n_queries = scaled(1024, scale, minimum=BLOCK, multiple=BLOCK)
    keys, children, universe = _build_tree(rng, height)
    leaf_values = (universe + 1).astype(np.int32)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    grid = n_queries // BLOCK
    common = dict(
        keys=launcher.buffer("keys", keys),
        children=launcher.buffer("children", children),
        leaf_values=launcher.buffer("leaf_values", leaf_values),
        height=height, n_queries=n_queries)
    q = rng.choice(universe, n_queries).astype(np.int32)
    if kernel_name == "b+tree_K1":
        params = dict(common,
                      queries=launcher.buffer("queries", q),
                      answers=launcher.buffer(
                          "answers", np.zeros(n_queries, np.int32)))
        fn = findk_kernel
    else:
        span = rng.integers(1, 1 << 12, n_queries)
        params = dict(common,
                      starts=launcher.buffer("starts", q),
                      ends=launcher.buffer(
                          "ends", (q + span).astype(np.int32)),
                      answers=launcher.buffer(
                          "answers", np.zeros(n_queries, np.int32)))
        fn = findrangek_kernel
    return PreparedKernel(name=kernel_name, fn=fn,
                          launch=LaunchConfig(grid, BLOCK),
                          params=params, launcher=launcher)


def prepare_k1(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    return _prepare("b+tree_K1", scale, seed, gpu)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    return _prepare("b+tree_K2", scale, seed, gpu)
