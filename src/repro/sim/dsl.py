"""Warp-synchronous CUDA-like kernel DSL.

Kernels are written as Python functions receiving a :class:`BlockContext`
(`k`), vectorised over all threads of a block.  Every DSL operation

* computes its result for all threads (numpy-vectorised),
* records one warp-level dynamic instruction per warp with active lanes
  (feeding the Figure 1 instruction mix and the timing model), and
* for adder-class operations records one lane-level :class:`AddTrace` row
  per active thread, carrying the *adder-domain* operands: integer
  subtracts record ``(a, ~b, cin=1)`` exactly as the hardware SUB mux
  does, FP ops record aligned mantissas (see :mod:`repro.core.floating`).

Divergence is expressed with ``with k.where(cond): ...`` blocks which
mask recording (and should guard stores).  Loops are plain Python
``for i in k.range(n)`` — the iterator increment is a real, recorded
IADD at a fixed PC, which is precisely the "PC1"-style highly-correlated
addition of the paper's Figure 2.

Example
-------
>>> def saxpy(k, a, x, y, out, n):
...     i = k.global_id()
...     with k.where(i < n):
...         xi = k.ld_global(x, i)
...         yi = k.ld_global(y, i)
...         k.st_global(out, i, k.ffma(a, xi, yi))
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.core import bitops, floating
from repro.isa.opcodes import Opcode
from repro.isa.pc import PcTable
from repro.sim.config import GPUConfig, LaunchConfig
from repro.sim.memory import (SHARED_BASE, DeviceBuffer,
                              MemoryStats)
from repro.sim.trace import TraceBuilder

_INT32_MASK = bitops.mask(32)


def _ivec(x, n: int) -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim == 0:
        return np.full(n, int(arr), dtype=np.int64)
    return arr.astype(np.int64, copy=False)


def _fvec(x, n: int, dtype) -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim == 0:
        return np.full(n, float(arr), dtype=dtype)
    return arr.astype(dtype, copy=False)


class BlockContext:
    """Execution context of one thread block (all DSL state lives here)."""

    def __init__(self, launch: LaunchConfig, block_id: int, sm: int,
                 builder: TraceBuilder, pcs: PcTable, gpu: GPUConfig,
                 mem_stats: MemoryStats, sanitizer=None):
        n = launch.block_threads
        self.launch = launch
        self.block_id = block_id
        self.sm = sm
        self.n_threads = n
        self.tid = np.arange(n, dtype=np.int64)          # threadIdx.x
        self.ltid = (self.tid % gpu.warp_size).astype(np.int8)
        self.warp_in_block = (self.tid // gpu.warp_size).astype(np.int32)
        self.n_warps = n // gpu.warp_size
        warp_base = block_id * self.n_warps
        self.warp = (warp_base + self.warp_in_block).astype(np.int32)
        self.gtid = (block_id * n + self.tid).astype(np.int64)

        self._builder = builder
        self._pcs = pcs
        self._gpu = gpu
        self._mem = mem_stats
        self._mask_stack = [np.ones(n, dtype=bool)]
        self._seq = 0
        self._shared_next = SHARED_BASE
        self._san = sanitizer
        self._scope_stack: list = []

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------

    def thread_id(self) -> np.ndarray:
        """threadIdx.x for every thread of the block."""
        return self._ret(self.tid.copy())

    def global_id(self) -> np.ndarray:
        """blockIdx.x * blockDim.x + threadIdx.x."""
        return self._ret(self.gtid.copy())

    @property
    def mask(self) -> np.ndarray:
        return self._mask_stack[-1]

    # ------------------------------------------------------------------
    # recording plumbing
    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        s = self._seq
        self._seq += 1
        return s

    def _active_per_warp(self, mask: np.ndarray) -> np.ndarray:
        return np.bincount(self.warp_in_block[mask],
                           minlength=self.n_warps)

    def _emit_inst(self, opcode: Opcode, mask=None) -> int:
        mask = self.mask if mask is None else mask
        seq = self._next_seq()
        self._builder.record_inst(
            seq=seq, block=self.block_id,
            warps=np.arange(self.n_warps) + self.block_id * self.n_warps,
            sm=self.sm, opcode=opcode,
            active_per_warp=self._active_per_warp(mask))
        return seq

    def _emit_add(self, opcode: Opcode, op_a, op_b, cin, width: int,
                  value, pc: int) -> None:
        mask = self.mask
        seq = self._emit_inst(opcode)
        if not mask.any():
            return
        self._builder.record_add(
            pc=pc, gtid=self.gtid[mask], ltid=self.ltid[mask],
            warp=self.warp[mask], sm=self.sm, block=self.block_id, seq=seq,
            op_a=np.asarray(op_a)[mask], op_b=np.asarray(op_b)[mask],
            cin=(cin[mask] if np.ndim(cin) else cin),
            width=width, opcode=opcode,
            value=np.asarray(value, dtype=np.float64)[mask])

    def _ret(self, value):
        """Return path of every value-producing DSL op: in sanitize mode
        the vector is tagged so raw numpy arithmetic on it is caught."""
        if self._san is not None:
            return self._san.wrap_value(value)
        return value

    def _scoped(self, tag: str) -> str:
        """Compose the active ``inline`` scopes into the PC tag, so one
        helper called from several sites interns distinct PCs per site
        (the static-instruction identity compiler inlining would give)."""
        if not self._scope_stack:
            return tag
        prefix = "/".join(self._scope_stack)
        return f"{prefix}|{tag}" if tag else prefix

    def _pc(self, tag: str = "") -> int:
        # depth: kernel code -> DSL op -> _pc -> intern
        return self._pcs.intern(depth=3, tag=self._scoped(tag))

    # ------------------------------------------------------------------
    # integer arithmetic (32-bit ALU adder class)
    # ------------------------------------------------------------------

    def iadd(self, a, b):
        """32-bit integer addition (ST2-able ALU adder op)."""
        a = _ivec(a, self.n_threads)
        b = _ivec(b, self.n_threads)
        res = a + b
        self._emit_add(Opcode.IADD, bitops.to_unsigned(a, 32),
                       bitops.to_unsigned(b, 32), 0, 32, res, self._pc())
        return self._ret(res)

    def isub(self, a, b):
        """32-bit integer subtraction: recorded as ``a + ~b + 1``."""
        a = _ivec(a, self.n_threads)
        b = _ivec(b, self.n_threads)
        res = a - b
        self._emit_add(Opcode.ISUB, bitops.to_unsigned(a, 32),
                       bitops.invert(b, 32), 1, 32, res, self._pc())
        return self._ret(res)

    def imin(self, a, b):
        """Integer min — compares via the adder (a - b), like MIN()."""
        a = _ivec(a, self.n_threads)
        b = _ivec(b, self.n_threads)
        res = np.minimum(a, b)
        self._emit_add(Opcode.IMIN, bitops.to_unsigned(a, 32),
                       bitops.invert(b, 32), 1, 32, res, self._pc())
        return self._ret(res)

    def imax(self, a, b):
        a = _ivec(a, self.n_threads)
        b = _ivec(b, self.n_threads)
        res = np.maximum(a, b)
        self._emit_add(Opcode.IMAX, bitops.to_unsigned(a, 32),
                       bitops.invert(b, 32), 1, 32, res, self._pc())
        return self._ret(res)

    # ------------------------------------------------------------------
    # integer non-adder ops
    # ------------------------------------------------------------------

    def imul(self, a, b):
        self._emit_inst(Opcode.IMUL)
        return self._ret(_ivec(a, self.n_threads)
                         * _ivec(b, self.n_threads))

    def imad(self, a, b, c):
        """a*b + c in the multiplier array (not an ST2 adder op)."""
        self._emit_inst(Opcode.IMAD)
        return self._ret(_ivec(a, self.n_threads)
                         * _ivec(b, self.n_threads)
                         + _ivec(c, self.n_threads))

    def idiv(self, a, b):
        self._emit_inst(Opcode.IDIV)
        b = _ivec(b, self.n_threads)
        safe = np.where(b == 0, 1, b)
        return self._ret(_ivec(a, self.n_threads) // safe)

    def irem(self, a, b):
        self._emit_inst(Opcode.IREM)
        b = _ivec(b, self.n_threads)
        safe = np.where(b == 0, 1, b)
        return self._ret(_ivec(a, self.n_threads) % safe)

    def iand(self, a, b):
        self._emit_inst(Opcode.IAND)
        return self._ret(_ivec(a, self.n_threads)
                         & _ivec(b, self.n_threads))

    def ior(self, a, b):
        self._emit_inst(Opcode.IOR)
        return self._ret(_ivec(a, self.n_threads)
                         | _ivec(b, self.n_threads))

    def ixor(self, a, b):
        self._emit_inst(Opcode.IXOR)
        return self._ret(_ivec(a, self.n_threads)
                         ^ _ivec(b, self.n_threads))

    def shl(self, a, b):
        self._emit_inst(Opcode.SHL)
        return self._ret(_ivec(a, self.n_threads)
                         << _ivec(b, self.n_threads))

    def shr(self, a, b):
        self._emit_inst(Opcode.SHR)
        return self._ret(_ivec(a, self.n_threads)
                         >> _ivec(b, self.n_threads))

    def sel(self, cond, a, b):
        """Predicated select (no adder involved)."""
        self._emit_inst(Opcode.SEL)
        return self._ret(np.where(np.asarray(cond, dtype=bool),
                                  np.asarray(a), np.asarray(b)))

    def cvt_f32(self, a):
        """Integer → FP32 conversion (CVT)."""
        self._emit_inst(Opcode.CVT)
        return self._ret(_ivec(a, self.n_threads).astype(np.float32))

    def cvt_i32(self, a):
        """FP32 → integer conversion (CVT, truncating)."""
        self._emit_inst(Opcode.CVT)
        return self._ret(_fvec(a, self.n_threads, np.float32).astype(np.int64))

    # comparisons: emit a SETP and return the predicate vector
    def _setp(self, pred, opcode=Opcode.SETP):
        self._emit_inst(opcode)
        return self._ret(pred)

    def lt(self, a, b):
        return self._setp(_ivec(a, self.n_threads) < _ivec(b, self.n_threads))

    def le(self, a, b):
        return self._setp(_ivec(a, self.n_threads) <= _ivec(b, self.n_threads))

    def gt(self, a, b):
        return self._setp(_ivec(a, self.n_threads) > _ivec(b, self.n_threads))

    def ge(self, a, b):
        return self._setp(_ivec(a, self.n_threads) >= _ivec(b, self.n_threads))

    def eq(self, a, b):
        return self._setp(_ivec(a, self.n_threads) == _ivec(b, self.n_threads))

    def ne(self, a, b):
        return self._setp(_ivec(a, self.n_threads) != _ivec(b, self.n_threads))

    def flt(self, a, b):
        return self._setp(
            _fvec(a, self.n_threads, np.float32)
            < _fvec(b, self.n_threads, np.float32), Opcode.FSETP)

    def fgt(self, a, b):
        return self._setp(
            _fvec(a, self.n_threads, np.float32)
            > _fvec(b, self.n_threads, np.float32), Opcode.FSETP)

    # ------------------------------------------------------------------
    # FP32 arithmetic (23-bit mantissa adder class)
    # ------------------------------------------------------------------

    def _emit_fp32_add(self, opcode: Opcode, x, y, value, pc: int) -> None:
        op1, op2, cin = floating.fp32_add_operands(x, y)
        self._emit_add(opcode, op1, op2, cin, 23, value, pc)

    def fadd(self, a, b):
        a = _fvec(a, self.n_threads, np.float32)
        b = _fvec(b, self.n_threads, np.float32)
        res = a + b
        self._emit_fp32_add(Opcode.FADD, a, b, res, self._pc())
        return self._ret(res)

    def fsub(self, a, b):
        a = _fvec(a, self.n_threads, np.float32)
        b = _fvec(b, self.n_threads, np.float32)
        res = a - b
        self._emit_fp32_add(Opcode.FSUB, a, -b, res, self._pc())
        return self._ret(res)

    def ffma(self, a, b, c):
        """FP32 fused multiply-add; the accumulate uses the ST2 adder."""
        a = _fvec(a, self.n_threads, np.float32)
        b = _fvec(b, self.n_threads, np.float32)
        c = _fvec(c, self.n_threads, np.float32)
        res = a * b + c
        op1, op2, cin = floating.fp32_fma_operands(a, b, c)
        self._emit_add(Opcode.FFMA, op1, op2, cin, 23, res, self._pc())
        return self._ret(res)

    def fmin(self, a, b):
        a = _fvec(a, self.n_threads, np.float32)
        b = _fvec(b, self.n_threads, np.float32)
        res = np.minimum(a, b)
        self._emit_fp32_add(Opcode.FMIN, a, -b, res, self._pc())
        return self._ret(res)

    def fmax(self, a, b):
        a = _fvec(a, self.n_threads, np.float32)
        b = _fvec(b, self.n_threads, np.float32)
        res = np.maximum(a, b)
        self._emit_fp32_add(Opcode.FMAX, a, -b, res, self._pc())
        return self._ret(res)

    def fmul(self, a, b):
        self._emit_inst(Opcode.FMUL)
        return self._ret(_fvec(a, self.n_threads, np.float32)
                         * _fvec(b, self.n_threads, np.float32))

    def fdiv(self, a, b):
        self._emit_inst(Opcode.FDIV)
        b = _fvec(b, self.n_threads, np.float32)
        safe = np.where(b == 0, np.float32(1), b)
        return self._ret(_fvec(a, self.n_threads, np.float32) / safe)

    def fneg(self, a):
        self._emit_inst(Opcode.FNEG)
        return self._ret(-_fvec(a, self.n_threads, np.float32))

    def fabs(self, a):
        self._emit_inst(Opcode.FABS)
        return self._ret(np.abs(_fvec(a, self.n_threads, np.float32)))

    # ------------------------------------------------------------------
    # FP64 arithmetic (52-bit mantissa adder class, DPU)
    # ------------------------------------------------------------------

    def dadd(self, a, b):
        a = _fvec(a, self.n_threads, np.float64)
        b = _fvec(b, self.n_threads, np.float64)
        res = a + b
        op1, op2, cin = floating.fp64_add_operands(a, b)
        self._emit_add(Opcode.DADD, op1, op2, cin, 52, res, self._pc())
        return self._ret(res)

    def dsub(self, a, b):
        a = _fvec(a, self.n_threads, np.float64)
        b = _fvec(b, self.n_threads, np.float64)
        res = a - b
        op1, op2, cin = floating.fp64_add_operands(a, -b)
        self._emit_add(Opcode.DSUB, op1, op2, cin, 52, res, self._pc())
        return self._ret(res)

    def dfma(self, a, b, c):
        a = _fvec(a, self.n_threads, np.float64)
        b = _fvec(b, self.n_threads, np.float64)
        c = _fvec(c, self.n_threads, np.float64)
        res = a * b + c
        op1, op2, cin = floating.fp64_fma_operands(a, b, c)
        self._emit_add(Opcode.DFMA, op1, op2, cin, 52, res, self._pc())
        return self._ret(res)

    def dmul(self, a, b):
        self._emit_inst(Opcode.DMUL)
        return self._ret(_fvec(a, self.n_threads, np.float64)
                         * _fvec(b, self.n_threads, np.float64))

    # ------------------------------------------------------------------
    # SFU
    # ------------------------------------------------------------------

    def _sfu(self, opcode: Opcode, fn, a):
        self._emit_inst(opcode)
        return self._ret(fn(_fvec(a, self.n_threads, np.float32)))

    def sqrt(self, a):
        return self._sfu(Opcode.SQRT, lambda v: np.sqrt(np.abs(v)), a)

    def rsqrt(self, a):
        return self._sfu(
            Opcode.RSQRT,
            lambda v: 1.0 / np.sqrt(np.maximum(np.abs(v), 1e-30)), a)

    def rcp(self, a):
        return self._sfu(
            Opcode.RCP,
            lambda v: 1.0 / np.where(v == 0, np.float32(1e-30), v), a)

    def sin(self, a):
        return self._sfu(Opcode.SIN, np.sin, a)

    def cos(self, a):
        return self._sfu(Opcode.COS, np.cos, a)

    def exp(self, a):
        return self._sfu(Opcode.EXP,
                         lambda v: np.exp(np.clip(v, -80, 80)), a)

    def log(self, a):
        return self._sfu(Opcode.LOG,
                         lambda v: np.log(np.maximum(np.abs(v), 1e-30)), a)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def shared(self, shape, dtype=np.float32) -> DeviceBuffer:
        """Allocate block-local shared memory."""
        data = np.zeros(shape, dtype=dtype)
        buf = DeviceBuffer(f"shared@{self._shared_next:x}", data,
                           self._shared_next)
        self._shared_next += data.size * data.itemsize
        if self._san is not None:
            self._san.on_shared_alloc(buf)
        return buf

    def _address_add(self, buf: DeviceBuffer, idx: np.ndarray,
                     tag: str) -> np.ndarray:
        """Emit the implicit 64-bit address add (base + byte offset)."""
        offs = buf.byte_offsets(idx)
        addr = buf.base + offs
        # frames: intern -> _address_add -> ld/st_global -> kernel code
        pc = self._pcs.intern(depth=3, tag=self._scoped(tag))
        self._emit_add(Opcode.LEA, np.full(self.n_threads, buf.base,
                                           dtype=np.uint64),
                       offs.astype(np.uint64), 0, 64, addr, pc)
        return addr

    def _clipped(self, buf: DeviceBuffer, idx) -> np.ndarray:
        idx = _ivec(idx, self.n_threads)
        return np.clip(idx, 0, len(buf) - 1)

    def ld_global(self, buf: DeviceBuffer, idx):
        """Global load; emits the address LEA plus the LDG."""
        idx = self._clipped(buf, idx)
        addr = self._address_add(buf, idx, "addr")
        mask = self.mask
        self._mem.record_global(np.asarray(addr)[mask].astype(np.int64),
                                self.warp_in_block[mask], is_store=False)
        self._emit_inst(Opcode.LDG)
        return self._ret(buf.data.reshape(-1)[idx].copy())

    def st_global(self, buf: DeviceBuffer, idx, val) -> None:
        """Global store (masked: only active lanes write)."""
        idx = self._clipped(buf, idx)
        addr = self._address_add(buf, idx, "addr")
        mask = self.mask
        self._mem.record_global(np.asarray(addr)[mask].astype(np.int64),
                                self.warp_in_block[mask], is_store=True)
        self._emit_inst(Opcode.STG)
        flat = buf.data.reshape(-1)
        val = np.asarray(val)
        if val.ndim == 0:
            val = np.full(self.n_threads, val.item())
        flat[idx[mask]] = val[mask].astype(buf.data.dtype)

    def ld_shared(self, buf: DeviceBuffer, idx):
        idx = self._clipped(buf, idx)
        if self._san is not None:
            self._san.on_shared_load(buf, idx, self.mask,
                                     self.warp_in_block)
        self._mem.shared_loads += int(self.mask.sum())
        self._emit_inst(Opcode.LDS)
        return self._ret(buf.data.reshape(-1)[idx].copy())

    def st_shared(self, buf: DeviceBuffer, idx, val) -> None:
        idx = self._clipped(buf, idx)
        mask = self.mask
        if self._san is not None:
            self._san.on_shared_store(buf, idx, mask, self.warp_in_block)
        self._mem.shared_stores += int(mask.sum())
        self._emit_inst(Opcode.STS)
        flat = buf.data.reshape(-1)
        val = np.asarray(val)
        if val.ndim == 0:
            val = np.full(self.n_threads, val.item())
        flat[idx[mask]] = val[mask].astype(buf.data.dtype)

    def ld_const(self, buf: DeviceBuffer, idx):
        idx = self._clipped(buf, idx)
        self._mem.const_loads += int(self.mask.sum())
        self._emit_inst(Opcode.LDC)
        return self._ret(buf.data.reshape(-1)[idx].copy())

    def atomic_add(self, buf: DeviceBuffer, idx, val):
        """``atomicAdd`` on global memory: colliding lanes serialise
        and every increment lands (``np.add.at`` semantics). Returns
        the pre-add values each lane observed, like the CUDA intrinsic.

        The addition itself runs in the memory partition's atomic unit,
        not the SM's ST2 adders, so no AddTrace row is recorded — but
        the memory traffic and the RMW instruction are.
        """
        idx = self._clipped(buf, idx)
        addr = self._address_add(buf, idx, "addr")
        mask = self.mask
        self._mem.record_global(np.asarray(addr)[mask].astype(np.int64),
                                self.warp_in_block[mask], is_store=True)
        self._emit_inst(Opcode.STG)   # RMW issues through the LSU
        flat = buf.data.reshape(-1)
        val = np.asarray(val)
        if val.ndim == 0:
            val = np.full(self.n_threads, val.item())
        # pre-add observation per lane: serialise colliding lanes in
        # lane order (an arbitrary but fixed arbitration, like HW)
        old = np.zeros(self.n_threads, dtype=flat.dtype)
        active = np.nonzero(mask)[0]
        for t in active:
            old[t] = flat[idx[t]]
            flat[idx[t]] += val[t]
        return self._ret(old)

    def atomic_add_shared(self, buf: DeviceBuffer, idx, val):
        """``atomicAdd`` on shared memory (same serialising semantics,
        shared-memory cost)."""
        idx = self._clipped(buf, idx)
        mask = self.mask
        if self._san is not None:
            self._san.on_shared_store(buf, idx, mask, self.warp_in_block,
                                      atomic=True)
        self._mem.shared_stores += int(mask.sum())
        self._emit_inst(Opcode.STS)
        flat = buf.data.reshape(-1)
        val = np.asarray(val)
        if val.ndim == 0:
            val = np.full(self.n_threads, val.item())
        old = np.zeros(self.n_threads, dtype=flat.dtype)
        for t in np.nonzero(mask)[0]:
            old[t] = flat[idx[t]]
            flat[idx[t]] += val[t]
        return self._ret(old)

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------

    @contextmanager
    def where(self, cond):
        """Divergent region: ops inside record only where ``cond`` holds."""
        cond = np.asarray(cond, dtype=bool)
        self._emit_inst(Opcode.BRA)
        self._mask_stack.append(self.mask & cond)
        try:
            yield
        finally:
            self._mask_stack.pop()

    def range(self, *args):
        """Loop over ``range(*args)``; the iterator increment is a real,
        recorded IADD (plus SETP and BRA), like a compiled loop."""
        frame_pc_add = self._pcs.intern(depth=2,
                                        tag=self._scoped("loop-inc"))
        r = range(*args)
        step = r.step
        for i in r:
            yield i
            # i += step  (the loop-carried addition)
            self._emit_add(Opcode.IADD,
                           bitops.to_unsigned(
                               np.full(self.n_threads, i, dtype=np.int64), 32),
                           bitops.to_unsigned(
                               np.full(self.n_threads, step, dtype=np.int64), 32),
                           0, 32, np.full(self.n_threads, i + step),
                           frame_pc_add)
            self._emit_inst(Opcode.SETP)
            self._emit_inst(Opcode.BRA)

    def syncthreads(self) -> None:
        """Barrier (a no-op functionally — blocks run warp-synchronously)."""
        if self._san is not None:
            self._san.on_barrier(self.mask)
        self._emit_inst(Opcode.BAR, mask=np.ones(self.n_threads, bool))

    @contextmanager
    def inline(self, scope: str):
        """Give DSL ops inside the block their own PC namespace.

        A Python helper that emits adder ops and is called from several
        sites of one kernel interns every call to the *same* PCs — the
        ST2 history then conflates streams that separate static
        instructions would keep apart (a compiler inlines each call
        site into its own instructions).  Wrapping each call site in
        ``with k.inline("site-tag"):`` restores per-site PC identity::

            with k.inline("lo"):
                c_lo = find_child(k, keys, node_lo, lo)
            with k.inline("hi"):
                c_hi = find_child(k, keys, node_hi, hi)

        Scopes nest; tags compose into the interned PC label.
        """
        self._scope_stack.append(scope)
        try:
            yield
        finally:
            self._scope_stack.pop()

    # ------------------------------------------------------------------
    # warp shuffles (intra-warp data exchange, SHFL class — ALU other)
    # ------------------------------------------------------------------

    def _shuffle(self, values, source_lane: np.ndarray):
        """Gather ``values`` from per-thread source lanes within each
        warp (out-of-range lanes read their own value, like CUDA)."""
        self._emit_inst(Opcode.MOV)   # SHFL issues like a MOV-class op
        values = np.asarray(values)
        lane = np.asarray(source_lane)
        valid = (lane >= 0) & (lane < 32)
        src_tid = self.warp_in_block * 32 + np.clip(lane, 0, 31)
        out = values[np.where(valid, src_tid, self.tid)]
        return self._ret(out)

    def shfl_down(self, values, delta: int):
        """``__shfl_down_sync``: lane i reads lane i+delta."""
        return self._shuffle(values, self.ltid.astype(np.int64) + delta)

    def shfl_up(self, values, delta: int):
        """``__shfl_up_sync``: lane i reads lane i-delta."""
        return self._shuffle(values, self.ltid.astype(np.int64) - delta)

    def shfl_xor(self, values, mask_bits: int):
        """``__shfl_xor_sync``: butterfly exchange within the warp."""
        return self._shuffle(values,
                             self.ltid.astype(np.int64) ^ mask_bits)

    def warp_reduce_fadd(self, values):
        """Tree reduction within each warp using shfl_down + FADD —
        the canonical CUDA warp-reduction idiom. Lane 0 of each warp
        holds the warp's sum afterwards."""
        acc = _fvec(values, self.n_threads, np.float32)
        delta = 16
        while delta >= 1:
            other = self.shfl_down(acc, delta)
            acc = self.fadd(acc, other)
            delta //= 2
        return acc

    def warp_reduce_iadd(self, values):
        """Integer warp reduction (shfl_down + IADD)."""
        acc = _ivec(values, self.n_threads)
        delta = 16
        while delta >= 1:
            other = self.shfl_down(acc, delta)
            acc = self.iadd(acc, other)
            delta //= 2
        return acc

    def tensor_mma(self) -> None:
        """One HMMA tensor-core op per warp (extension workload)."""
        self._emit_inst(Opcode.HMMA)
