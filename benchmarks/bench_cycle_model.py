"""Structural pipeline study (Figure 4's microarchitecture in motion).

The cycle-driven model exposes what the paper's Section IV-C argues
qualitatively: the CRF read piggy-backs on the operand collector with
negligible port pressure, write-back conflicts are rare, and the two
independent timing models agree on kernel-duration magnitudes.
"""


from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.sim.cycle_model import CycleModel, compare_policies
from repro.sim.pipeline import simulate_sm

KERNELS = ("pathfinder", "sgemm", "sad_K1", "dwt2d_K1", "histo_K1")


def _study(suite_runs):
    rows = []
    for name in KERNELS:
        run = suite_runs[name]
        cyc = CycleModel().simulate(run.insts, run.launch)
        ev = simulate_sm(run.insts, run.launch)
        pol = compare_policies(run.insts, run.launch)
        rows.append((name, cyc, ev, pol))
    return rows


def test_cycle_model_study(benchmark, suite_runs, artifact_dir):
    rows = benchmark.pedantic(_study, args=(suite_runs,), rounds=1,
                              iterations=1)

    txt = table(
        "cycle-driven vs event-driven SM models",
        ["kernel", "cycle-model", "event-model", "ratio", "IPC",
         "dep stalls", "FU stalls", "CRF rd-conf", "CRF wr-conf"],
        [(name, cyc.cycles, ev.cycles,
          f"{cyc.cycles / ev.cycles:.2f}",
          f"{cyc.issued_per_cycle:.2f}",
          cyc.stall_dependency, cyc.stall_fu,
          cyc.crf_read_port_conflicts, cyc.crf_write_conflicts)
         for name, cyc, ev, __ in rows])

    txt += "\n\n" + table(
        "warp-scheduler policy sensitivity",
        ["kernel", "GTO cycles", "LRR cycles", "delta"],
        [(name, pol["gto"].cycles, pol["lrr"].cycles,
          f"{pol['lrr'].cycles / pol['gto'].cycles - 1:+.1%}")
         for name, __, __, pol in rows])

    crf_pressure = [(name,
                     cyc.crf_reads,
                     cyc.crf_read_port_conflicts / max(cyc.crf_reads, 1))
                    for name, cyc, __, __ in rows]
    txt += "\n\n" + table(
        "CRF port pressure (Section IV-C: piggy-backing on the operand "
        "collector)",
        ["kernel", "CRF reads", "port-conflict fraction"],
        [(n, r, f"{f:.2%}") for n, r, f in crf_pressure])
    save_artifact(artifact_dir, "cycle_model.txt", txt)

    for name, cyc, ev, __ in rows:
        # the two models must agree in magnitude
        assert 0.2 < cyc.cycles / ev.cycles < 5.0, name
        # the paper's claim: CRF access fits the pipeline — port
        # conflicts must be a small fraction of reads
        assert cyc.crf_read_port_conflicts <= 0.45 * cyc.crf_reads, name
