"""Suppression-comment syntax shared by st2-lint and the sanitizer.

A finding is silenced by annotating its source line::

    hi = pos + BLOCK  # st2-lint: disable=L1 — folds into LDS immediate

Several rules may be listed (``disable=L1,L3``) and ``disable=all``
silences every rule.  Justification text after the rule list is
encouraged (and enforced by review, not by the tool).
"""

from __future__ import annotations

import re

_DIRECTIVE = re.compile(r"#\s*st2-lint:\s*disable=([A-Za-z0-9_,\s]*)")


def suppressed_rules(line_text: str) -> frozenset:
    """Rule ids disabled on this source line (possibly ``{'all'}``)."""
    m = _DIRECTIVE.search(line_text or "")
    if not m:
        return frozenset()
    return frozenset(r.strip() for r in m.group(1).split(",") if r.strip())


def line_suppresses(line_text: str, rule: str) -> bool:
    rules = suppressed_rules(line_text)
    return rule in rules or "all" in rules
