"""``st2-trace`` CLI: subcommands, exit codes, store effects."""

from __future__ import annotations

import pytest

from repro.runner.cache import code_version
from repro.runner.trace_cli import main
from repro.sim.trace_store import TraceStore, trace_key

SMOKE = ("binomial", "pathfinder", "qrng_K2")


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store populated once via the CLI itself."""
    root = tmp_path_factory.mktemp("store")
    rc = main(["--store", str(root), "capture", "--kernels", "smoke",
               "--scale", "0.15", "--workers", "1"])
    assert rc == 0
    return root


class TestCapture:
    def test_populates_one_entry_per_kernel(self, warm_store, capsys):
        store = TraceStore(warm_store)
        assert len(store) == len(SMOKE)
        kernels = {h["kernel"] for _, h in store.entries()}
        assert kernels == set(SMOKE)

    def test_recapture_is_warm(self, warm_store, capsys):
        rc = main(["--store", str(warm_store), "capture",
                   "--kernels", "smoke", "--scale", "0.15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 captured, 3 already warm" in out

    def test_unknown_kernel_exit_2(self, tmp_path, capsys):
        rc = main(["--store", str(tmp_path), "capture",
                   "--kernels", "bogus"])
        assert rc == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_per_kernel_seeds_change_keys(self, warm_store):
        version = code_version()
        shared = trace_key("binomial", 0.15, 0, version)
        assert TraceStore(warm_store).has(shared)
        derived = main(["--store", str(warm_store), "capture",
                        "--kernels", "binomial", "--scale", "0.15",
                        "--per-kernel-seeds"])
        assert derived == 0
        assert len(TraceStore(warm_store)) == len(SMOKE) + 1


class TestLs:
    def test_lists_entries(self, warm_store, capsys):
        rc = main(["--store", str(warm_store), "ls"])
        assert rc == 0
        out = capsys.readouterr().out
        for kernel in SMOKE:
            assert kernel in out
        assert "current" in out

    def test_empty_store(self, tmp_path, capsys):
        rc = main(["--store", str(tmp_path / "none"), "ls"])
        assert rc == 0
        assert "empty" in capsys.readouterr().out


class TestVerify:
    def test_sound_store_exit_0(self, warm_store, capsys):
        rc = main(["--store", str(warm_store), "verify"])
        assert rc == 0
        assert "sound" in capsys.readouterr().out

    def test_damaged_entry_exit_1(self, warm_store, capsys):
        store = TraceStore(warm_store)
        key = store.keys()[0]
        victim = store.path(key) / "add_value.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0x55
        victim.write_bytes(bytes(raw))
        try:
            rc = main(["--store", str(warm_store), "verify"])
            assert rc == 1
            assert "sha256 mismatch" in capsys.readouterr().out
        finally:
            raw[-1] ^= 0x55                  # heal for later tests
            victim.write_bytes(bytes(raw))

    def test_missing_key_exit_1(self, warm_store, capsys):
        rc = main(["--store", str(warm_store), "verify", "f" * 40])
        assert rc == 1


class TestGc:
    def test_no_criteria_exit_2(self, tmp_path, capsys):
        rc = main(["--store", str(tmp_path), "gc"])
        assert rc == 2

    def test_dry_run_keeps_entries(self, warm_store, capsys):
        store = TraceStore(warm_store)
        before = len(store)
        rc = main(["--store", str(warm_store), "gc", "--max-bytes",
                   "0", "--dry-run"])
        assert rc == 0
        assert len(store) == before

    def test_stale_gc_keeps_current_version(self, warm_store, capsys):
        rc = main(["--store", str(warm_store), "gc", "--stale"])
        assert rc == 0
        assert len(TraceStore(warm_store)) > 0   # all still current
