"""The integrated ST2 GPU architecture: end-to-end evaluation, energy
breakdowns, overhead accounting, design-point ablations and the typed
:class:`~repro.st2.results.RunResult` the runner hands back.

Exports are lazy (PEP 562): importing :mod:`repro.st2` costs nothing
until a name is touched — in particular, touching only ``RunResult``
never drags in the power/circuit stack behind the evaluators.
"""

from repro._lazy import lazy_attrs

_LAZY_EXPORTS = {
    "EnergyBreakdown": ("repro.st2.energy", "EnergyBreakdown"),
    "EnergyComparison": ("repro.st2.energy", "EnergyComparison"),
    "KernelEvaluation": ("repro.st2.architecture", "KernelEvaluation"),
    "OverheadReport": ("repro.st2.overheads", "OverheadReport"),
    "RunMetrics": ("repro.st2.results", "RunMetrics"),
    "RunResult": ("repro.st2.results", "RunResult"),
    "as_run_result": ("repro.st2.results", "as_run_result"),
    "evaluate_kernel": ("repro.st2.architecture", "evaluate_kernel"),
    "evaluate_run": ("repro.st2.architecture", "evaluate_run"),
    "evaluate_suite": ("repro.st2.architecture", "evaluate_suite"),
    "overhead_report": ("repro.st2.overheads", "overhead_report"),
}

__all__ = sorted(_LAZY_EXPORTS)

__getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY_EXPORTS)
