"""Rodinia *kmeans* — ``kmeans_K1`` (kmeansPoint).

One thread per point: for every cluster, accumulate the squared
Euclidean distance over the feature dimensions with an FFMA chain, keep
the running minimum, and store the winning cluster index.  Features are
laid out column-major (feature-major) as in the Rodinia CUDA version, so
the per-feature loads stride by ``npoints``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, blocks_for, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def kmeans_kernel(k, features, clusters, membership, npoints, nclusters,
                  nfeatures):
    """kmeansPoint: assign each point to its nearest cluster centre."""
    pt = k.global_id()
    with k.where(k.lt(pt, npoints)):
        best_dist = np.full(k.n_threads, np.float32(3.4e38))
        best_idx = np.zeros(k.n_threads, dtype=np.int64)
        for c in k.range(nclusters):
            dist = np.zeros(k.n_threads, dtype=np.float32)
            base = k.imul(c, nfeatures)
            for f in k.range(nfeatures):
                addr = k.imad(f, npoints, pt)
                val = k.ld_global(features, addr)
                centre = k.ld_const(clusters, k.iadd(base, f))
                diff = k.fsub(val, centre)
                dist = k.ffma(diff, diff, dist)
            closer = k.flt(dist, best_dist)
            best_dist = k.fmin(dist, best_dist)
            best_idx = k.sel(closer, c, best_idx)
        k.st_global(membership, pt, best_idx)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Clustered gaussian blobs (kdd_cup-shaped value ranges)."""
    rng = np.random.default_rng(seed)
    npoints = scaled(1024, scale, minimum=BLOCK, multiple=BLOCK)
    nclusters = 5
    nfeatures = scaled(12, scale, minimum=4)

    centres = rng.uniform(0.0, 2.0, (nclusters, nfeatures))
    labels = rng.integers(0, nclusters, npoints)
    pts = centres[labels] + rng.normal(0, 0.15, (npoints, nfeatures))
    features = np.ascontiguousarray(pts.T, dtype=np.float32)  # feature-major

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="kmeans_K1",
        fn=kmeans_kernel,
        launch=LaunchConfig(blocks_for(npoints, BLOCK), BLOCK),
        params=dict(
            features=launcher.buffer("features", features.reshape(-1)),
            clusters=launcher.buffer("clusters",
                                     centres.astype(np.float32).reshape(-1)),
            membership=launcher.buffer("membership",
                                       np.zeros(npoints, np.int32)),
            npoints=npoints, nclusters=nclusters, nfeatures=nfeatures),
        launcher=launcher)
