"""Section V-C — power-model calibration and validation.

Paper: the model is trained on 123 component stressors against silicon,
then validated on the 23-kernel suite (a held-out set), achieving a
10.5 % +/- 3.8 % mean absolute relative error and Pearson r = 0.8.
"""

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import scatter, table
from repro.power.activity import activity_from_run
from repro.power.calibration import calibrate
from repro.power.components import Component
from repro.power.hardware import SyntheticSilicon
from repro.power.validation import validate
from repro.sim.pipeline import simulate_sm


def _calibrate_and_validate(suite_runs):
    silicon = SyntheticSilicon(seed=0)
    cal = calibrate(silicon)
    activities = {
        name: activity_from_run(run, simulate_sm(run.insts, run.launch),
                                name=name)
        for name, run in suite_runs.items()}
    result = validate(cal.model, activities, silicon)
    return cal, result


def test_power_model_validation(benchmark, suite_runs, artifact_dir):
    cal, result = benchmark.pedantic(
        _calibrate_and_validate, args=(suite_runs,), rounds=1,
        iterations=1)

    txt = table(
        "calibrated Eq.(1) parameters",
        ["term", "fitted"],
        [(c.value, f"{cal.model.scales[c]:.3f}") for c in Component]
        + [("P_const (W)", f"{cal.model.p_const_w:.1f}"),
           ("P_idleSM (W)", f"{cal.model.p_idle_sm_w:.3f}")])
    txt += "\n\n" + scatter(
        "validation: measured vs predicted power (23 kernels)",
        result.measured_w, result.predicted_w,
        x_label="measured W", y_label="predicted W")
    txt += (f"\n\ntraining MAPE (123 stressors): "
            f"{cal.training_mape:.1%}"
            f"\nvalidation: {result.summary()}"
            "\n(paper: 10.5% +/- 3.8%, Pearson r 0.8)")
    save_artifact(artifact_dir, "power_model_validation.txt", txt)

    assert cal.n_benchmarks == 123
    assert cal.training_mape < 0.06
    assert result.mape < 0.20, "validation error must stay usable"
    assert result.pearson_r > 0.75, "strong correlation as in paper"
    for c, s in cal.model.scales.items():
        assert 0.2 < s < 5.0, f"degenerate scale for {c}"
