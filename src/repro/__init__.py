"""repro — a full reproduction of *ST2 GPU: An Energy-Efficient GPU
Design with Spatio-Temporal Shared-Thread Speculative Adders*
(Kandiah, Gok, Tziantzioulis, Hardavellas — DAC 2021).

Public API highlights
---------------------

* :class:`repro.core.adder.ST2Adder` — the speculative sliced adder.
* :class:`repro.core.predictors.SpeculationConfig` /
  :func:`repro.core.predictors.run_speculation` — the carry-speculation
  design space over execution traces.
* :data:`repro.core.speculation.ST2_DESIGN` — the paper's final design
  point (``Ltid+Prev+ModPC4+Peek``).
* :mod:`repro.kernels.suite` — the 23-kernel evaluation suite.
* :func:`repro.st2.architecture.evaluate_suite` — the end-to-end
  Section VI evaluation (misprediction, timing, energy).
* :mod:`repro.runner` — the parallel cached experiment runner
  (``st2-run``) with its two-stage trace-store pipeline (``st2-trace``).
* :mod:`repro.serve` — the async sharded experiment service
  (``st2-serve`` / ``st2-client``) speaking the typed, versioned wire
  schemas of :mod:`repro.api`.
* :mod:`repro.sweep` — declarative design-space sweeps (``st2-sweep``)
  with incremental Pareto-frontier tracking, sound dominance pruning
  and manifest-based resume, locally or against ``st2-serve``.

See DESIGN.md for the full system inventory, EXPERIMENTS.md for the
paper-vs-measured record of every figure, and README.md ("Public API")
for the stability guarantees of the names exported here.
"""

from repro._lazy import lazy_attrs
from repro.core.adder import CarrySelectAdder, ReferenceAdder, ST2Adder
from repro.core.predictors import (SpeculationConfig, SpeculationResult,
                                   run_speculation)
from repro.core.slices import AdderGeometry
from repro.core.speculation import DESIGN_LADDER, ST2_DESIGN
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher, KernelRun, run_kernel

__version__ = "1.0.0"

#: Runner / trace-store / observability entry points exported lazily
#: (PEP 562): they pull in the whole kernel suite or the metrics
#: machinery, which ``import repro`` users on the quickstart path
#: should not pay for.
_LAZY_EXPORTS = {
    "ErrorEnvelope": ("repro.api", "ErrorEnvelope"),
    "JobResult": ("repro.api", "JobResult"),
    "JobSpec": ("repro.api", "JobSpec"),
    "JobStatus": ("repro.api", "JobStatus"),
    "Obs": ("repro.obs", "Obs"),
    "ParetoPoint": ("repro.sweep.pareto", "ParetoPoint"),
    "ResultCache": ("repro.runner", "ResultCache"),
    "ServeClient": ("repro.serve.client", "ServeClient"),
    "SweepResult": ("repro.sweep.engine", "SweepResult"),
    "SweepSpec": ("repro.api", "SweepSpec"),
    "RunMetrics": ("repro.st2.results", "RunMetrics"),
    "RunOptions": ("repro.runner", "RunOptions"),
    "RunResult": ("repro.st2.results", "RunResult"),
    "TraceBundle": ("repro.sim.trace_io", "TraceBundle"),
    "TraceStore": ("repro.sim.trace_store", "TraceStore"),
    "UnitSpec": ("repro.runner", "UnitSpec"),
    "build_units": ("repro.runner", "build_units"),
    "get_obs": ("repro.obs", "get_obs"),
    "metrics_path_for": ("repro.obs", "metrics_path_for"),
    "read_metrics": ("repro.obs", "read_metrics"),
    "run_suite_units": ("repro.runner", "run_suite_units"),
    "run_units": ("repro.runner", "run_units"),
    "write_metrics": ("repro.obs", "write_metrics"),
}

__all__ = [
    "AdderGeometry",
    "CarrySelectAdder",
    "DESIGN_LADDER",
    "ErrorEnvelope",
    "GPUConfig",
    "GridLauncher",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "KernelRun",
    "LaunchConfig",
    "Obs",
    "ParetoPoint",
    "ReferenceAdder",
    "ResultCache",
    "RunMetrics",
    "RunOptions",
    "RunResult",
    "ST2Adder",
    "ST2_DESIGN",
    "ServeClient",
    "SpeculationConfig",
    "SpeculationResult",
    "SweepResult",
    "SweepSpec",
    "TITAN_V",
    "TraceBundle",
    "TraceStore",
    "UnitSpec",
    "build_units",
    "get_obs",
    "metrics_path_for",
    "read_metrics",
    "run_kernel",
    "run_speculation",
    "run_suite_units",
    "run_units",
    "write_metrics",
]

__getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY_EXPORTS)
