"""Grid expansion: normalisation, provable equivalence classes and
the duplicate/invalid accounting the sweep engine reports."""

import pytest

from repro.api import SweepSpec
from repro.sweep.grid import (HISTORY_FIELDS, HISTORY_FREE_MECHANISMS,
                              canonical_fields, expand_plan,
                              normalize_fields)


def spec(axes, kernels=("qrng_K2",)):
    return SweepSpec(name="g", kernels=kernels, axes=axes)


class TestNormalisation:
    def test_dead_pc_bits_pinned(self):
        fields = {"mechanism": "prev", "peek": False,
                  "pc_index": "none", "pc_bits": 4,
                  "thread_key": "", "sm_scoped": False}
        assert normalize_fields(fields)["pc_bits"] == 0
        fields["pc_index"] = "mod"
        assert normalize_fields(fields)["pc_bits"] == 4

    def test_canonical_fields_for_history_free(self):
        fields = {"mechanism": "operand", "peek": True,
                  "pc_index": "mod", "pc_bits": 4,
                  "thread_key": "gtid", "sm_scoped": True}
        canon = canonical_fields(fields)
        assert canon["mechanism"] == "operand"
        assert canon["peek"] is True
        assert canon["pc_index"] == "none"
        assert canon["pc_bits"] == 0
        assert canon["thread_key"] == ""
        assert canon["sm_scoped"] is False


class TestExpansion:
    def test_duplicates_counted_not_expanded(self):
        """pc_bits is dead under 'none': the two values collapse."""
        plan = expand_plan(spec((("mechanism", ("prev",)),
                                 ("pc_index", ("none",)),
                                 ("pc_bits", (0, 4)))))
        assert plan.n_configs == 1
        assert plan.duplicate_configs == 1
        assert plan.invalid_combos == 0

    def test_invalid_combos_counted(self):
        """mod indexing with pc_bits=0 is rejected by the config
        model and dropped at expansion."""
        plan = expand_plan(spec((("mechanism", ("prev",)),
                                 ("pc_index", ("mod",)),
                                 ("pc_bits", (0, 4)))))
        assert plan.n_configs == 1
        assert plan.invalid_combos == 1

    def test_history_free_mechanisms_collapse(self):
        """static1 never reads the history fields: the whole
        thread_key x sm_scoped cross is one equivalence class."""
        plan = expand_plan(spec((("mechanism", ("static1",)),
                                 ("thread_key", ("", "gtid", "ltid")),
                                 ("sm_scoped", (False, True)))))
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.canon == "staticOne"
        assert len(group.members) == 6
        assert group.runner is group.members[0]
        assert plan.equivalent_members == 5

    def test_history_mechanism_does_not_collapse(self):
        plan = expand_plan(spec((("mechanism", ("prev",)),
                                 ("thread_key", ("", "gtid")))))
        assert len(plan.groups) == 2
        assert plan.equivalent_members == 0

    def test_peek_is_always_live(self):
        plan = expand_plan(spec((("mechanism", ("static1",)),
                                 ("peek", (False, True)))))
        assert sorted(g.canon for g in plan.groups) \
            == ["staticOne", "staticOne+Peek"]

    def test_canon_fields_round_trip(self):
        plan = expand_plan(spec((("mechanism", ("operand", "prev")),
                                 ("peek", (False, True)))))
        for group in plan.groups:
            assert set(group.canon_fields) \
                >= set(HISTORY_FIELDS) | {"mechanism", "peek"}

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            expand_plan(spec((("peek", (False,)),),
                             kernels=("warp_drive",)))

    def test_kernel_groups_resolve(self):
        plan = expand_plan(spec((("peek", (False,)),),
                                kernels=("smoke",)))
        assert len(plan.kernels) >= 2

    def test_mechanism_partition_is_complete(self):
        """Every swept mechanism is classified one way or the other —
        a new mechanism must make a deliberate choice."""
        from repro.api import SWEEP_AXES
        for mech in SWEEP_AXES["mechanism"]:
            assert mech in HISTORY_FREE_MECHANISMS or mech == "prev"
