"""``repro.lint`` — st2-lint, the kernel-DSL correctness analyzer.

Every number this reproduction reports flows through the hand-ported
DSL kernels: the ST2 predictor consumes exactly ``(PC, lane,
operands)``, so a kernel that does raw numpy arithmetic instead of
``k.iadd``, aliases call-site PCs through a shared helper, or races on
shared memory silently corrupts misprediction rates and energy numbers
with no test failing.  This package makes those bug classes loud:

======  ==============================================================
rule    what it catches
======  ==============================================================
L1      untraced arithmetic: numpy ``+``/``-`` on device vectors
        bypassing the DSL emit path (drops AddTrace rows,
        undercounts adder energy)
L2      PC aliasing: a helper emitting adder ops called from several
        sites of one kernel without ``k.inline`` scopes (one interned
        PC where hardware has one per inlined site — inflates ModPCk
        accuracy)
L3      shared-memory store→load communication across thread-dependent
        indices with no intervening ``syncthreads``
L4      ``syncthreads`` under a divergent ``k.where`` mask (deadlock
        on hardware)
L5      nondeterminism (unseeded RNG, wall-clock reads) in modules the
        runner's content-addressed cache hashes — poisons cache keys
L6      provably-constant slice carry at an adder site (informational;
        the proofs ``st2-lint facts`` exports for the simulator's
        StaticPeekPredictor)
L7      flow-sensitive barrier divergence: L4, but only where the
        abstract interpreter proves a divergent mask actually reaches
        the barrier — and retracting L4 where it proves it cannot
L8      range-proven dead speculation: all boundary carries of an
        adder site are static (informational)
======  ==============================================================

L6–L8 run on a real dataflow stack: :mod:`repro.lint.ir` lowers each
kernel to a basic-block CFG, :mod:`repro.lint.absint` interprets it
over interval × known-bits × uniformity domains, and
:mod:`repro.lint.facts` turns the adder-site summaries into per-PC
carry facts (``st2-lint facts --json``).

Intentional sites are silenced in source with a justification::

    x = tx + BLOCK   # st2-lint: disable=L1 — folds into the LDS immediate

The static layer lives here; its runtime twin (shared-memory race
epochs and the untraced-arithmetic probe) is
:mod:`repro.sim.sanitizer`.  The CLI is ``st2-lint``
(:mod:`repro.lint.cli`).

The public entry points are imported lazily so that
:mod:`repro.sim.sanitizer` can import :mod:`repro.lint.suppress`
without dragging the analyzer (and through it the kernel suite) into
every simulator import.
"""

from __future__ import annotations

from repro.lint.findings import (INFO_RULES, RULES,       # noqa: F401
                                 Finding)
from repro.lint.suppress import (line_suppresses,         # noqa: F401
                                 suppressed_rules)

_LAZY = {
    "lint_source": "repro.lint.analyzer",
    "lint_paths": "repro.lint.analyzer",
    "load_baseline": "repro.lint.baseline",
    "write_baseline": "repro.lint.baseline",
    "new_findings": "repro.lint.baseline",
    "main": "repro.lint.cli",
    "lower_function": "repro.lint.ir",
    "analyze_source": "repro.lint.absint",
    "analyze_function": "repro.lint.absint",
    "facts_for_kernel": "repro.lint.facts",
    "facts_for_module": "repro.lint.facts",
    "module_facts_from_source": "repro.lint.facts",
    "CarryFact": "repro.lint.facts",
}

__all__ = ["Finding", "INFO_RULES", "RULES", "line_suppresses",
           "suppressed_rules", *_LAZY]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib
    return getattr(importlib.import_module(module), name)
